// Multithreaded stress tests for the concurrent PH-tree entry points:
// PhTreeSync (one tree-wide reader/writer lock) and PhTreeSharded
// (lock-striped shards). Designed to run under the Tsan build preset
// (-DCMAKE_BUILD_TYPE=Tsan): every test mixes concurrent insert, erase,
// point and window reads, then checks structural invariants with
// validate.h after the threads join. Thread and op counts are sized so
// the whole file stays in seconds even at TSan's slowdown.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "phtree/phtree_sync.h"
#include "phtree/sharded.h"
#include "phtree/validate.h"

namespace phtree {
namespace {

std::vector<PhEntry> RandomEntries(size_t n, uint32_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<PhEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PhKey key(dim);
    for (auto& v : key) {
      v = rng.NextU64();
    }
    entries.push_back(PhEntry{std::move(key), i});
  }
  return entries;
}

// Shared stress scenario: `kWriters` threads churn random keys in a small
// key space (maximising node splits/merges and arena recycling), while
// `kReaders` threads run point lookups and window/count queries over a
// protected key range that is never erased. Works for any tree type with
// the common concurrent interface.
template <typename Tree>
void MixedChurnStress(Tree& tree, int writers, int readers, int ops) {
  // Protected keys: high bit patterns spread across shards; never erased.
  constexpr uint64_t kProtected = 256;
  for (uint64_t i = 0; i < kProtected; ++i) {
    const PhKey key{i << 56, i << 48};
    tree.InsertOrAssign(key, i);
  }
  std::atomic<bool> reader_failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&tree, t, ops] {
      Rng rng(1000 + t);
      for (int i = 0; i < ops; ++i) {
        // Low-entropy churn keys, disjoint from the protected range
        // (protected keys have low 48 bits zero; churn keys are odd).
        const PhKey key{rng.NextBounded(512) * 2 + 1,
                        rng.NextBounded(512) * 2 + 1};
        if (rng.NextBool(0.5)) {
          tree.InsertOrAssign(key, static_cast<uint64_t>(t));
        } else {
          tree.Erase(key);
        }
      }
    });
  }
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&tree, &reader_failed, t, ops] {
      Rng rng(2000 + t);
      for (int i = 0; i < ops; ++i) {
        const uint64_t k = rng.NextBounded(kProtected);
        const PhKey key{k << 56, k << 48};
        if (!tree.Contains(key)) {
          reader_failed = true;
        }
        if (i % 32 == 0) {
          const PhKey lo{0, 0};
          const PhKey hi{~uint64_t{0}, ~uint64_t{0}};
          if (tree.CountWindow(lo, hi) < kProtected) {
            reader_failed = true;
          }
        }
        if (i % 64 == 0) {
          size_t seen = 0;
          tree.QueryWindow(PhKey{0, 0}, PhKey{~uint64_t{0}, ~uint64_t{0}},
                           [&seen](const PhKey&, uint64_t) { ++seen; });
          if (seen < kProtected) {
            reader_failed = true;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(reader_failed.load());
}

TEST(PhTreeSyncConcurrency, MixedChurnStress) {
  PhTreeSync tree(2);
  MixedChurnStress(tree, 3, 2, 2000);
  // Quiescent now; nothing to validate beyond stats consistency. Nodes
  // retired by copy-on-write publications may still await their epoch
  // grace period, so the live-byte meter carries them alongside the
  // reachable bytes.
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_GE(stats.n_entries, 256u);
  EXPECT_EQ(stats.memory_bytes + stats.arena_retired_bytes,
            stats.arena_live_bytes);
}

TEST(PhTreeShardedConcurrency, MixedChurnStress) {
  PhTreeSharded tree(2, 8);
  MixedChurnStress(tree, 3, 2, 2000);
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_GE(stats.n_entries, 256u);
  EXPECT_EQ(stats.memory_bytes + stats.arena_retired_bytes,
            stats.arena_live_bytes);
  for (uint32_t s = 0; s < tree.num_shards(); ++s) {
    EXPECT_EQ(ValidatePhTree(tree.UnsafeShard(s)), "") << "shard " << s;
  }
}

TEST(PhTreeShardedConcurrency, ParallelWritersOnDisjointShards) {
  // One writer per shard, writing only keys that route to its shard: no
  // writer ever contends, and every shard ends internally consistent.
  PhTreeSharded tree(2, 4);
  std::vector<std::thread> threads;
  constexpr int kPerThread = 3000;
  for (uint32_t s = 0; s < 4; ++s) {
    threads.emplace_back([&tree, s] {
      PhKey lo;
      PhKey hi;
      tree.ShardRegion(s, &lo, &hi);
      Rng rng(300 + s);
      for (int i = 0; i < kPerThread; ++i) {
        // Random key inside the shard's box: the region is a power-of-two
        // aligned box, so hi - lo is a mask of the free bits.
        PhKey key(2);
        for (uint32_t d = 0; d < 2; ++d) {
          key[d] = lo[d] | (rng.NextU64() & (hi[d] - lo[d]));
        }
        EXPECT_EQ(tree.ShardOf(key), s);
        tree.InsertOrAssign(key, s);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_GT(tree.size(), 0u);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(ValidatePhTree(tree.UnsafeShard(s)), "") << "shard " << s;
  }
}

TEST(PhTreeShardedConcurrency, BulkLoadRacesWithReaders) {
  // BulkLoad holds only per-shard writer locks, so concurrent readers must
  // stay safe (they see each shard either before or after its build).
  PhTreeSharded tree(2, 8);
  const auto warm = RandomEntries(512, 2, 71);
  tree.BulkLoad(warm);
  const auto entries = RandomEntries(20000, 2, 72);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(400 + t);
      while (!stop.load()) {
        // Warm keys were fully loaded before the race began.
        const auto& e = warm[rng.NextBounded(warm.size())];
        if (tree.Find(e.key) != std::optional<uint64_t>(e.value)) {
          failed = true;
        }
        std::this_thread::yield();
      }
    });
  }
  const size_t inserted = tree.BulkLoad(entries);
  stop = true;
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_LE(inserted, entries.size());
  EXPECT_EQ(tree.size(), warm.size() + inserted);
  for (uint32_t s = 0; s < tree.num_shards(); ++s) {
    EXPECT_EQ(ValidatePhTree(tree.UnsafeShard(s)), "") << "shard " << s;
  }
}

TEST(PhTreeShardedConcurrency, SaveWhileWritersChurn) {
  // Save takes all reader locks together: it must produce a loadable,
  // internally consistent snapshot no matter how writers interleave
  // before/after it.
  PhTreeSharded tree(2, 4);
  const auto base = RandomEntries(2000, 2, 81);
  tree.BulkLoad(base);
  const std::string path = testing::TempDir() + "/churn_snapshot.pht";
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(82);
    while (!stop.load()) {
      const PhKey key{rng.NextBounded(1024), rng.NextBounded(1024)};
      if (rng.NextBool(0.5)) {
        tree.InsertOrAssign(key, 7);
      } else {
        tree.Erase(key);
      }
    }
  });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tree.Save(path).ok());
    PhTreeSharded reloaded(2, 8);
    ASSERT_TRUE(reloaded.Load(path).ok());
    // Base entries use the full 64-bit key space; the churn keys live in
    // [0, 1024)^2, so collisions are vanishingly unlikely — every base
    // entry must be in the snapshot.
    size_t missing = 0;
    for (const auto& e : base) {
      missing += reloaded.Contains(e.key) ? 0 : 1;
    }
    EXPECT_EQ(missing, 0u);
    for (uint32_t s = 0; s < reloaded.num_shards(); ++s) {
      EXPECT_EQ(ValidatePhTree(reloaded.UnsafeShard(s)), "");
    }
  }
  stop = true;
  writer.join();
  std::remove(path.c_str());
}

TEST(PhTreeShardedConcurrency, ConcurrentMixedQueriesDuringChurn) {
  // Window fan-out, count fan-out and kNN all run while writers churn;
  // nothing here asserts cross-shard snapshot semantics (there are none),
  // only memory safety and per-shard consistency — the TSan target.
  PhTreeSharded tree(3, 8);
  const auto base = RandomEntries(3000, 3, 91);
  tree.BulkLoad(base);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&tree, t, &stop] {
      Rng rng(500 + t);
      while (!stop.load()) {
        PhKey key(3);
        for (auto& v : key) {
          v = rng.NextU64();
        }
        if (rng.NextBool(0.7)) {
          tree.InsertOrAssign(key, t);
        } else {
          tree.Erase(key);
        }
      }
    });
  }
  Rng rng(510);
  for (int q = 0; q < 60; ++q) {
    PhKey lo(3);
    PhKey hi(3);
    for (uint32_t d = 0; d < 3; ++d) {
      const uint64_t a = rng.NextU64();
      const uint64_t b = rng.NextU64();
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const size_t count = tree.CountWindow(lo, hi);
    const auto results = tree.QueryWindow(lo, hi);
    // Both ran against a churning tree; only sanity, not equality.
    (void)count;
    for (const auto& [key, value] : results) {
      for (uint32_t d = 0; d < 3; ++d) {
        EXPECT_GE(key[d], lo[d]);
        EXPECT_LE(key[d], hi[d]);
      }
    }
    const auto knn = tree.KnnSearch(lo, 8);
    EXPECT_LE(knn.size(), 8u);
  }
  stop = true;
  for (auto& th : threads) {
    th.join();
  }
  for (uint32_t s = 0; s < tree.num_shards(); ++s) {
    EXPECT_EQ(ValidatePhTree(tree.UnsafeShard(s)), "") << "shard " << s;
  }
}

}  // namespace
}  // namespace phtree
