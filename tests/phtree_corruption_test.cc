// Corruption fault-injection harness for snapshot format v2 (serialize.h):
// systematically truncates, bit-flips and splices a valid snapshot and
// asserts every mutation is either rejected with the right SnapshotError
// class or yields a tree that passes ValidatePhTree — never a crash (run
// under Asan/UBSan: `ctest -L tier1` in the sanitizer build presets),
// never a silently broken tree. Also covers the atomic-save protocol and
// the I/O-vs-format error distinction.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "benchlib/snapshot_fault.h"
#include "common/rng.h"
#include "common/status.h"
#include "phtree/phtree.h"
#include "phtree/serialize.h"
#include "phtree/validate.h"

namespace phtree {
namespace {

PhTree MakeTree(size_t n, uint32_t dim, uint64_t seed,
                PhTreeConfig config = {}) {
  Rng rng(seed);
  PhTree tree(dim, config);
  for (size_t i = 0; i < n; ++i) {
    PhKey key(dim);
    for (auto& v : key) {
      // Mixed magnitudes so deltas span 0..8 encoded bytes.
      v = rng.NextU64() >> (rng.NextBounded(5) * 8);
    }
    tree.InsertOrAssign(key, i);
  }
  return tree;
}

/// Reference snapshot small enough for exhaustive per-bit sweeps but with
/// many records (entries_per_record=16), so record framing, record CRCs
/// and the trailer all get hit.
std::vector<uint8_t> SmallSnapshot() {
  const PhTree tree = MakeTree(128, 3, 42);
  SaveOptions opts;
  opts.entries_per_record = 16;
  return SerializePhTree(tree, opts);
}

bool CodeIn(StatusCode code, std::initializer_list<StatusCode> allowed) {
  for (StatusCode c : allowed) {
    if (c == code) {
      return true;
    }
  }
  return false;
}

TEST(SnapshotLayoutTest, DescribesFraming) {
  const auto bytes = SmallSnapshot();
  const auto layout = DescribeSnapshot(bytes);
  ASSERT_TRUE(layout.has_value()) << layout.error().ToString();
  EXPECT_EQ(layout->version, kSnapshotVersion);
  EXPECT_EQ(layout->entry_count, 128u);
  EXPECT_EQ(layout->records.size(), 8u);  // 128 entries / 16 per record
  EXPECT_EQ(layout->trailer_end, bytes.size());
  EXPECT_EQ(layout->trailer_end - layout->trailer_begin, 16u);
  uint64_t total = 0;
  for (const auto& rec : layout->records) {
    EXPECT_EQ(rec.entry_count, 16u);
    total += rec.entry_count;
  }
  EXPECT_EQ(total, layout->entry_count);
}

TEST(CorruptionHarness, TruncationAtEveryByteIsDetected) {
  const auto bytes = SmallSnapshot();
  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusCode code = StatusCode::kOk;
    const std::string failure =
        CheckMutatedSnapshot(TruncateSnapshot(bytes, len), &code);
    ASSERT_EQ(failure, "") << "truncated to " << len << " bytes";
    ASSERT_EQ(code, StatusCode::kTruncated)
        << "truncated to " << len << " bytes, got " << StatusCodeName(code);
  }
}

TEST(CorruptionHarness, EveryBitFlipIsDetectedWithTheRightClass) {
  const auto bytes = SmallSnapshot();
  const auto layout = DescribeSnapshot(bytes);
  ASSERT_TRUE(layout.has_value());
  std::map<SnapshotRegion, size_t> hits;
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    StatusCode code = StatusCode::kOk;
    const std::string failure = CheckMutatedSnapshot(FlipBit(bytes, bit), &code);
    ASSERT_EQ(failure, "") << "bit " << bit;
    const SnapshotRegion region = RegionOf(*layout, bit / 8);
    ++hits[region];
    bool allowed = false;
    switch (region) {
      case SnapshotRegion::kHeader:
        allowed = CodeIn(code, {StatusCode::kBadMagic,
                                StatusCode::kUnsupportedVersion,
                                StatusCode::kHeaderCorrupt});
        break;
      case SnapshotRegion::kRecordLength:
        allowed = CodeIn(code, {StatusCode::kTruncated,
                                StatusCode::kRecordCorrupt});
        break;
      case SnapshotRegion::kRecordPayload:
      case SnapshotRegion::kRecordCrc:
        allowed = CodeIn(code, {StatusCode::kRecordCorrupt});
        break;
      case SnapshotRegion::kTrailer:
        allowed = CodeIn(code, {StatusCode::kTrailerCorrupt});
        break;
    }
    ASSERT_TRUE(allowed) << "bit " << bit << " in region "
                         << SnapshotRegionName(region) << " rejected as "
                         << StatusCodeName(code);
  }
  // The sweep actually exercised every region.
  for (SnapshotRegion region :
       {SnapshotRegion::kHeader, SnapshotRegion::kRecordLength,
        SnapshotRegion::kRecordPayload, SnapshotRegion::kRecordCrc,
        SnapshotRegion::kTrailer}) {
    EXPECT_GT(hits[region], 0u) << SnapshotRegionName(region);
  }
}

TEST(CorruptionHarness, RecordBoundaryTruncationOnLargeSnapshot) {
  // Default framing (512 entries/record) over a multi-record tree.
  const PhTree tree = MakeTree(1500, 3, 7);
  const auto bytes = SerializePhTree(tree);
  const auto layout = DescribeSnapshot(bytes);
  ASSERT_TRUE(layout.has_value());
  ASSERT_EQ(layout->records.size(), 3u);
  std::vector<size_t> cuts = {layout->header_end, layout->trailer_begin};
  for (const auto& rec : layout->records) {
    cuts.push_back(rec.begin);
    cuts.push_back(rec.payload_begin);
    cuts.push_back(rec.crc_offset);
    cuts.push_back(rec.end);
  }
  for (size_t cut : cuts) {
    StatusCode code = StatusCode::kOk;
    ASSERT_EQ(CheckMutatedSnapshot(TruncateSnapshot(bytes, cut), &code), "");
    ASSERT_EQ(code, StatusCode::kTruncated) << "cut at " << cut;
  }
}

TEST(CorruptionHarness, RecordSplicesAreDetected) {
  const PhTree tree = MakeTree(1500, 3, 7);
  const auto bytes = SerializePhTree(tree);
  const auto layout = DescribeSnapshot(bytes);
  ASSERT_TRUE(layout.has_value());
  ASSERT_GE(layout->records.size(), 3u);

  StatusCode code = StatusCode::kOk;
  // Swapping two CRC-intact records must still be caught (by the decoded
  // key checks or the whole-stream trailer CRC).
  ASSERT_EQ(CheckMutatedSnapshot(SwapRecords(bytes, *layout, 0, 2), &code), "");
  EXPECT_NE(code, StatusCode::kOk) << "record swap was accepted";
  ASSERT_EQ(CheckMutatedSnapshot(SwapRecords(bytes, *layout, 1, 2), &code), "");
  EXPECT_NE(code, StatusCode::kOk) << "record swap was accepted";

  ASSERT_EQ(CheckMutatedSnapshot(DropRecord(bytes, *layout, 1), &code), "");
  EXPECT_NE(code, StatusCode::kOk) << "record drop was accepted";

  ASSERT_EQ(CheckMutatedSnapshot(DuplicateRecord(bytes, *layout, 1), &code),
            "");
  EXPECT_NE(code, StatusCode::kOk) << "record duplication was accepted";
}

TEST(CorruptionHarness, RandomizedMutationSweep10k) {
  // Seeded, deterministic 10k-iteration sweep mixing bit flips, byte
  // overwrites, truncations and insertions. Runs in every build; the Asan
  // preset (which `ctest -L tier1` covers) is the one that would catch a
  // loader overread on these streams.
  const auto bytes = SmallSnapshot();
  Rng rng(20260807);
  size_t rejected = 0;
  size_t accepted = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    std::vector<uint8_t> mutated = bytes;
    const uint64_t kind = rng.NextBounded(4);
    if (kind == 0) {  // flip 1-8 random bits
      const uint64_t flips = 1 + rng.NextBounded(8);
      for (uint64_t f = 0; f < flips; ++f) {
        const size_t bit = rng.NextBounded(mutated.size() * 8);
        mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
    } else if (kind == 1) {  // overwrite 1-4 random bytes
      const uint64_t writes = 1 + rng.NextBounded(4);
      for (uint64_t w = 0; w < writes; ++w) {
        mutated[rng.NextBounded(mutated.size())] =
            static_cast<uint8_t>(rng.NextU64());
      }
    } else if (kind == 2) {  // truncate, maybe after a flip
      if (rng.NextBool(0.5)) {
        const size_t bit = rng.NextBounded(mutated.size() * 8);
        mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
      mutated.resize(rng.NextBounded(mutated.size()));
    } else {  // insert 1-4 random bytes at a random offset
      const uint64_t inserts = 1 + rng.NextBounded(4);
      std::vector<uint8_t> junk;
      for (uint64_t j = 0; j < inserts; ++j) {
        junk.push_back(static_cast<uint8_t>(rng.NextU64()));
      }
      const size_t at = rng.NextBounded(mutated.size() + 1);
      mutated.insert(mutated.begin() + static_cast<long>(at), junk.begin(),
                     junk.end());
    }
    StatusCode code = StatusCode::kOk;
    const std::string failure = CheckMutatedSnapshot(mutated, &code);
    ASSERT_EQ(failure, "") << "iteration " << iter;
    (code == StatusCode::kOk ? accepted : rejected) += 1;
  }
  // Byte overwrites can no-op (same value re-written), so a handful of
  // accepts are legitimate; the overwhelming majority must be rejections.
  EXPECT_EQ(rejected + accepted, 10000u);
  EXPECT_GT(rejected, 9900u) << "accepted " << accepted;
}

TEST(CorruptionHarness, CountMismatchBehindValidChecksumsIsRejected) {
  // Regression for the declared-count cross-check: lie consistently about
  // the entry count in header AND trailer, then repair every CRC so the
  // stream sails through checksum verification — the loader must still
  // reject it by comparing against the rebuilt tree size.
  const PhTree tree = MakeTree(100, 2, 3);
  auto bytes = SerializePhTree(tree);
  const auto layout = DescribeSnapshot(bytes);
  ASSERT_TRUE(layout.has_value());
  // Header entry count lives at offset 26 (magic 4 + len 4 + dim 4 + repr 1
  // + hysteresis 8 + hc_max_dim 4 + store_values 1); trailer count at
  // trailer_begin. Bump both from 100 to 101.
  ASSERT_EQ(bytes[26], 100);
  bytes[26] = 101;
  ASSERT_EQ(bytes[layout->trailer_begin], 100);
  bytes[layout->trailer_begin] = 101;
  ASSERT_TRUE(RepairSnapshotChecksums(&bytes));
  const auto result = DeserializePhTreeOr(bytes);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code(), StatusCode::kCountMismatch)
      << result.error().ToString();
  EXPECT_NE(result.error().ToString().find("101"), std::string::npos);
}

TEST(CorruptionHarness, ChecksumsOffStillCatchesStructuralLies) {
  // With verify_checksums=false a flipped value byte is accepted (the CRCs
  // are the only thing guarding payload bytes) — but the tree still
  // validates and the framing/count cross-checks still run.
  const auto bytes = SmallSnapshot();
  const auto layout = DescribeSnapshot(bytes);
  ASSERT_TRUE(layout.has_value());
  // Last 8 payload bytes of record 0 = the stored value of its last entry.
  const size_t value_byte = layout->records[0].crc_offset - 4;
  auto mutated = FlipBit(bytes, value_byte * 8);

  LoadOptions lax;
  lax.verify_checksums = false;
  lax.validate_structure = true;
  const auto result = DeserializePhTreeOr(mutated, lax);
  ASSERT_TRUE(result.has_value()) << result.error().ToString();
  EXPECT_EQ(result->size(), 128u);
  EXPECT_EQ(ValidatePhTree(*result), "");

  // The same stream under checksum verification is rejected.
  const auto strict = DeserializePhTreeOr(mutated);
  ASSERT_FALSE(strict.has_value());
  EXPECT_EQ(strict.error().code(), StatusCode::kRecordCorrupt);
  // Framing damage is caught even with checksums off.
  const auto truncated = TruncateSnapshot(bytes, bytes.size() / 2);
  const auto lax_trunc = DeserializePhTreeOr(truncated, lax);
  ASSERT_FALSE(lax_trunc.has_value());
  EXPECT_EQ(lax_trunc.error().code(), StatusCode::kTruncated);
}

TEST(CorruptionHarness, ErrorsCarryByteOffsets) {
  const auto bytes = SmallSnapshot();
  const auto layout = DescribeSnapshot(bytes);
  ASSERT_TRUE(layout.has_value());
  // A flip inside record 3's payload must be reported at that record's
  // length-field offset with the record index in the message.
  const auto mutated = FlipBit(bytes, layout->records[3].payload_begin * 8);
  const auto result = DeserializePhTreeOr(mutated);
  ASSERT_FALSE(result.has_value());
  const SnapshotError& err = result.error();
  EXPECT_EQ(err.code(), StatusCode::kRecordCorrupt);
  ASSERT_TRUE(err.has_offset());
  EXPECT_EQ(err.offset(), layout->records[3].begin);
  EXPECT_NE(err.message().find("record 3"), std::string::npos)
      << err.ToString();
  EXPECT_NE(err.ToString().find("RECORD_CORRUPT at byte"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Atomic durable saves and the I/O-vs-format error distinction.

class TempFile {
 public:
  explicit TempFile(const std::string& name) : path_("/tmp/" + name) {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(AtomicSave, CrashBetweenWriteAndRenameLeavesOldSnapshotLoadable) {
  TempFile file("phtree_atomic_save_test.bin");
  const PhTree old_tree = MakeTree(300, 2, 1);
  ASSERT_TRUE(SavePhTreeOr(old_tree, file.path()).ok());

  // Simulate a crash mid-save of a newer tree: the .tmp file exists (here:
  // torn — only half the bytes made it) but the rename never happened.
  const PhTree new_tree = MakeTree(400, 2, 2);
  const auto new_bytes = SerializePhTree(new_tree);
  std::FILE* f = std::fopen((file.path() + ".tmp").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(new_bytes.data(), 1, new_bytes.size() / 2, f);
  std::fclose(f);

  // The published snapshot is untouched by the torn temp file.
  const auto loaded = LoadPhTreeOr(file.path());
  ASSERT_TRUE(loaded.has_value()) << loaded.error().ToString();
  EXPECT_EQ(loaded->size(), old_tree.size());

  // A completed save replaces it atomically and cleans up the temp file.
  ASSERT_TRUE(SavePhTreeOr(new_tree, file.path()).ok());
  const auto reloaded = LoadPhTreeOr(file.path());
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->size(), new_tree.size());
  EXPECT_NE(::access((file.path() + ".tmp").c_str(), F_OK), 0)
      << "temp file left behind after a successful save";
}

TEST(AtomicSave, IoFailuresAreIoErrors) {
  const PhTree tree = MakeTree(10, 2, 5);
  // Unwritable directory (procfs rejects file creation even for root).
  Status st = SavePhTreeOr(tree, "/proc/phtree_corruption_test.bin");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
  // Missing parent directory.
  st = SavePhTreeOr(tree, "/tmp/phtree_no_such_dir_xyzzy/snap.bin");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
}

TEST(LoadErrors, IoVersusFormatFailuresAreDistinguished) {
  // Missing file -> I/O error, with the errno text in the message.
  const auto missing = LoadPhTreeOr("/tmp/phtree_does_not_exist_xyzzy.bin");
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code(), StatusCode::kIoError);
  EXPECT_NE(missing.error().message().find("No such file"), std::string::npos)
      << missing.error().ToString();

  // A file that exists but was truncated on disk -> format error
  // (kTruncated), NOT an I/O error.
  TempFile file("phtree_truncated_on_disk_test.bin");
  const PhTree tree = MakeTree(300, 2, 9);
  ASSERT_TRUE(SavePhTreeOr(tree, file.path()).ok());
  const auto full = SerializePhTree(tree);
  std::FILE* f = std::fopen(file.path().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(full.data(), 1, full.size() / 3, f);
  std::fclose(f);
  const auto short_file = LoadPhTreeOr(file.path());
  ASSERT_FALSE(short_file.has_value());
  EXPECT_EQ(short_file.error().code(), StatusCode::kTruncated)
      << short_file.error().ToString();

  // A zero-length file never held a snapshot at all — it is classified as
  // an unusable path (kIoError, like a directory), not a torn format.
  f = std::fopen(file.path().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  const auto empty = LoadPhTreeOr(file.path());
  ASSERT_FALSE(empty.has_value());
  EXPECT_EQ(empty.error().code(), StatusCode::kIoError);

  // The legacy bool/optional shims still collapse everything to "no".
  EXPECT_FALSE(LoadPhTree(file.path()).has_value());
  EXPECT_FALSE(LoadPhTree("/tmp/phtree_does_not_exist_xyzzy.bin").has_value());
}

TEST(LoadErrors, ParanoidLoadAcceptsHealthySnapshots) {
  TempFile file("phtree_paranoid_load_test.bin");
  const PhTree tree = MakeTree(500, 3, 11);
  ASSERT_TRUE(SavePhTreeOr(tree, file.path()).ok());
  LoadOptions paranoid;
  paranoid.verify_checksums = true;
  paranoid.validate_structure = true;
  const auto loaded = LoadPhTreeOr(file.path(), paranoid);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().ToString();
  EXPECT_EQ(loaded->size(), tree.size());
  EXPECT_EQ(ValidatePhTree(*loaded), "");
}

}  // namespace
}  // namespace phtree
