// Unit tests for the unified traversal engine (src/phtree/cursor.h): the
// window-mask algebra against brute force, TreeCursor full / window /
// prefix scans against filtered enumeration, and the suspend/resume
// pagination contract (including resume after the token key was erased)
// across PhTree, PhTreeSync and both PhTreeSharded routing modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "phtree/cursor.h"
#include "phtree/phtree.h"
#include "phtree/phtree_sync.h"
#include "phtree/sharded.h"

namespace phtree {
namespace {

using Entries = std::vector<std::pair<PhKey, uint64_t>>;

/// Restores the process-wide cursor tuning when a test body returns.
struct TuningGuard {
  CursorTuning saved = GetCursorTuning();
  ~TuningGuard() { MutableCursorTuning() = saved; }
};

// ---- Mask algebra vs brute force ----------------------------------------

TEST(WindowMaskTest, ValiditySuccessorAndSuccessorGeMatchBruteForce) {
  Rng rng(0xC0FFEE);
  constexpr uint32_t kBits = 10;  // 1024-address hypercube, exhaustive
  const uint64_t space = uint64_t{1} << kBits;
  for (int round = 0; round < 200; ++round) {
    const uint64_t upper = rng.NextU64() & LowMask(kBits);
    const uint64_t lower = rng.NextU64() & upper;  // guarantee m_L subset m_U
    std::vector<uint64_t> valid;
    for (uint64_t a = 0; a < space; ++a) {
      const bool expect = (a | lower) == a && (a & upper) == a;
      ASSERT_EQ(WindowAddrValid(a, lower, upper), expect)
          << "addr " << a << " lower " << lower << " upper " << upper;
      if (expect) {
        valid.push_back(a);
      }
    }
    ASSERT_FALSE(valid.empty());  // m_L itself is always valid
    for (uint64_t a = 0; a < space; ++a) {
      // Successor: smallest valid address strictly greater than a. The
      // paper formula is only defined for a valid current address (that is
      // how the cursor steps); invalid addresses go through SuccessorGE.
      const auto next = std::upper_bound(valid.begin(), valid.end(), a);
      if (WindowAddrValid(a, lower, upper) && next != valid.end()) {
        ASSERT_EQ(WindowSuccessor(a, lower, upper), *next)
            << "addr " << a << " lower " << lower << " upper " << upper;
      }
      // SuccessorGE: smallest valid address >= a, kInvalidAddr if none.
      const auto ge = std::lower_bound(valid.begin(), valid.end(), a);
      const uint64_t expect_ge = ge == valid.end() ? kInvalidAddr : *ge;
      ASSERT_EQ(WindowSuccessorGE(a, lower, upper), expect_ge)
          << "addr " << a << " lower " << lower << " upper " << upper;
    }
  }
}

TEST(WindowMaskTest, SuccessorGeKnownValues) {
  // The counterexample that broke the naive `addr | m_L` derivation:
  // lower == upper == 0b100, addr 0b011 -> 0b100 (not "no successor").
  EXPECT_EQ(WindowSuccessorGE(0b011, 0b100, 0b100), 0b100u);
  EXPECT_EQ(WindowSuccessorGE(0b011, 0b001, 0b101), 0b101u);
  EXPECT_EQ(WindowSuccessorGE(0b110, 0b001, 0b101), kInvalidAddr);
  EXPECT_EQ(WindowSuccessorGE(0b101, 0b010, 0b111), 0b110u);
  EXPECT_EQ(WindowSuccessorGE(0, 0, 0), 0u);
  EXPECT_EQ(WindowSuccessorGE(1, 0, 0), kInvalidAddr);
}

TEST(WindowMaskTest, ComputeWindowMasksMatchesQuadrantIntersection) {
  // Under the descent invariant (the node's own region intersects the
  // window in every dimension — the parent established that before
  // descending), an address is mask-valid iff its quadrant box intersects
  // the window, checked per dimension with RegionBounds.
  Rng rng(0xFACADE);
  for (int round = 0; round < 500; ++round) {
    const uint32_t dim = 1 + rng.NextBounded(4);
    const uint32_t postfix_len = rng.NextBounded(kBitWidth);
    PhKey path(dim), min(dim), max(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      path[d] = rng.NextU64();
      // min[d] <= region_hi and max[d] >= region_lo: the invariant above.
      uint64_t region_lo, region_hi;
      RegionBounds(path[d], postfix_len + 1, &region_lo, &region_hi);
      min[d] = region_hi == ~uint64_t{0} ? rng.NextU64()
                                         : rng.NextBounded(region_hi + 1);
      const uint64_t floor = std::max(min[d], region_lo);
      max[d] = floor == 0 ? rng.NextU64()
                          : floor + rng.NextU64() % (uint64_t{0} - floor);
    }
    const WindowMasks masks = ComputeWindowMasks(path, min, max, postfix_len);
    for (uint64_t addr = 0; addr < (uint64_t{1} << dim); ++addr) {
      bool intersects = true;
      for (uint32_t d = 0; d < dim; ++d) {
        // Child quadrant of dimension d: the node region's bit
        // `postfix_len` set from the address, lower bits free.
        const uint64_t base = path[d] & ~LowMask(postfix_len + 1);
        const uint64_t bit = (addr >> (dim - 1 - d)) & 1;
        uint64_t lo, hi;
        RegionBounds(base | (bit << postfix_len), postfix_len, &lo, &hi);
        if (hi < min[d] || lo > max[d]) {
          intersects = false;
          break;
        }
      }
      ASSERT_EQ(WindowAddrValid(addr, masks.lower, masks.upper), intersects)
          << "round " << round << " addr " << addr;
    }
  }
}

TEST(ZOrderCompareTest, AgreesWithZOrderLess) {
  Rng rng(0x2ED0);
  for (int round = 0; round < 2000; ++round) {
    const uint32_t dim = 1 + rng.NextBounded(5);
    PhKey a(dim), b(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      a[d] = rng.NextU64() & LowMask(1 + rng.NextBounded(8));
      // Bias towards equal / near-equal keys so ties are actually hit.
      b[d] = rng.NextBool(0.5) ? a[d] : rng.NextU64() & LowMask(8);
    }
    const int cmp = ZOrderCompare(a, b);
    EXPECT_EQ(cmp < 0, ZOrderLess(a, b));
    EXPECT_EQ(cmp > 0, ZOrderLess(b, a));
    EXPECT_EQ(cmp == 0, a == b);
    EXPECT_EQ(ZOrderCompare(b, a), -cmp);
  }
}

// ---- TreeCursor scans vs brute force ------------------------------------

struct CursorParam {
  uint32_t dim;
  uint32_t key_bits;
  NodeRepr repr;
};

std::string CursorParamName(const testing::TestParamInfo<CursorParam>& info) {
  const char* repr = info.param.repr == NodeRepr::kAdaptive ? "Adaptive"
                     : info.param.repr == NodeRepr::kLhcOnly ? "LhcOnly"
                                                             : "HcOnly";
  return "dim" + std::to_string(info.param.dim) + "bits" +
         std::to_string(info.param.key_bits) + repr;
}

class TreeCursorTest : public testing::TestWithParam<CursorParam> {
 protected:
  void BuildTree(size_t n, Rng* rng) {
    const CursorParam p = GetParam();
    PhTreeConfig cfg;
    cfg.repr = p.repr;
    tree_ = std::make_unique<PhTree>(p.dim, cfg);
    for (size_t i = 0; i < n; ++i) {
      PhKey key(p.dim);
      for (auto& v : key) {
        v = rng->NextU64() & LowMask(p.key_bits);
      }
      if (tree_->Insert(key, i)) {
        entries_.emplace_back(std::move(key), i);
      }
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const auto& a, const auto& b) {
                return ZOrderLess(a.first, b.first);
              });
  }

  Entries BruteWindow(const PhKey& lo, const PhKey& hi) const {
    Entries out;
    for (const auto& e : entries_) {
      bool in = true;
      for (size_t d = 0; d < e.first.size(); ++d) {
        in = in && e.first[d] >= lo[d] && e.first[d] <= hi[d];
      }
      if (in) {
        out.push_back(e);
      }
    }
    return out;  // entries_ is z-sorted, so this is the expected sequence
  }

  static Entries Drain(TreeCursor cursor) {
    Entries out;
    for (; cursor.Valid(); cursor.Next()) {
      const auto key = cursor.key();
      out.emplace_back(PhKey(key.begin(), key.end()), cursor.value());
    }
    return out;
  }

  std::unique_ptr<PhTree> tree_;
  Entries entries_;  // z-sorted ground truth
};

TEST_P(TreeCursorTest, FullScanIsZOrderedAndComplete) {
  Rng rng(0xF001 ^ GetParam().dim);
  BuildTree(900, &rng);
  EXPECT_EQ(Drain(TreeCursor(*tree_)), entries_);
}

TEST_P(TreeCursorTest, WindowScanMatchesBruteForceUnderAllTunings) {
  const CursorParam p = GetParam();
  Rng rng(0xAB5E ^ p.dim ^ (p.key_bits << 8));
  BuildTree(900, &rng);
  TuningGuard guard;
  for (const bool hc_skip : {true, false}) {
    for (const bool lhc_seek : {true, false}) {
      MutableCursorTuning() = CursorTuning{hc_skip, lhc_seek};
      for (int q = 0; q < 40; ++q) {
        PhKey lo(p.dim), hi(p.dim);
        for (uint32_t d = 0; d < p.dim; ++d) {
          uint64_t a = rng.NextU64() & LowMask(p.key_bits);
          uint64_t b = rng.NextU64() & LowMask(p.key_bits);
          lo[d] = std::min(a, b);
          hi[d] = std::max(a, b);
        }
        ASSERT_EQ(Drain(TreeCursor(*tree_, lo, hi)), BruteWindow(lo, hi))
            << "hc_skip " << hc_skip << " lhc_seek " << lhc_seek;
      }
    }
  }
}

TEST_P(TreeCursorTest, PointWindowFindsExactlyTheStoredKey) {
  Rng rng(0x90127 ^ GetParam().dim);
  BuildTree(500, &rng);
  for (size_t i = 0; i < entries_.size(); i += 7) {
    const PhKey& key = entries_[i].first;
    TreeCursor cursor(*tree_, key, key);
    ASSERT_TRUE(cursor.Valid());
    EXPECT_TRUE(std::equal(key.begin(), key.end(), cursor.key().begin()));
    EXPECT_EQ(cursor.value(), entries_[i].second);
    cursor.Next();
    EXPECT_FALSE(cursor.Valid());
  }
  // A key that is not stored yields an immediately-exhausted cursor.
  PhKey missing(GetParam().dim, LowMask(GetParam().key_bits));
  if (!tree_->Contains(missing)) {
    EXPECT_FALSE(TreeCursor(*tree_, missing, missing).Valid());
  }
}

TEST_P(TreeCursorTest, PrefixScanMatchesBruteForce) {
  const CursorParam p = GetParam();
  Rng rng(0x9FE1 ^ p.dim);
  BuildTree(700, &rng);
  for (const uint32_t prefix_bits :
       {uint32_t{0}, kBitWidth - p.key_bits, kBitWidth - p.key_bits + 2,
        kBitWidth - 1, kBitWidth}) {
    const PhKey& probe = entries_[entries_.size() / 2].first;
    uint64_t lo_word, hi_word;
    Entries expect;
    for (const auto& e : entries_) {
      bool match = true;
      for (uint32_t d = 0; d < p.dim && match; ++d) {
        RegionBounds(probe[d], kBitWidth - prefix_bits, &lo_word, &hi_word);
        match = e.first[d] >= lo_word && e.first[d] <= hi_word;
      }
      if (match) {
        expect.push_back(e);
      }
    }
    EXPECT_EQ(Drain(TreeCursor::Prefix(*tree_, probe, prefix_bits)), expect)
        << "prefix_bits " << prefix_bits;
  }
}

TEST_P(TreeCursorTest, PaginationConcatenatesToTheOneShotScan) {
  const CursorParam p = GetParam();
  Rng rng(0x7A6E ^ p.dim);
  BuildTree(600, &rng);
  PhKey lo(p.dim, 0), hi(p.dim, LowMask(p.key_bits));
  const Entries oneshot = tree_->QueryWindow(lo, hi);
  for (const size_t page_size : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
    Entries paged;
    std::optional<PhKey> token;
    size_t pages = 0;
    for (;;) {
      const WindowPage page =
          token.has_value()
              ? tree_->QueryWindowPage(lo, hi, page_size, *token)
              : tree_->QueryWindowPage(lo, hi, page_size);
      ASSERT_LE(page.entries.size(), page_size);
      paged.insert(paged.end(), page.entries.begin(), page.entries.end());
      ASSERT_LE(++pages, oneshot.size() / page_size + 2);
      if (!page.more) {
        // The exact-more contract: the final page is the first page that
        // could not be filled OR the scan ended precisely at a boundary.
        EXPECT_TRUE(page.token.empty());
        break;
      }
      token = page.token;
    }
    EXPECT_EQ(paged, oneshot) << "page_size " << page_size;
  }
}

TEST_P(TreeCursorTest, ResumeSurvivesEraseOfTheTokenKey) {
  const CursorParam p = GetParam();
  Rng rng(0xDEAD ^ p.dim);
  BuildTree(400, &rng);
  PhKey lo(p.dim, 0), hi(p.dim, LowMask(p.key_bits));
  const Entries oneshot = tree_->QueryWindow(lo, hi);
  ASSERT_GE(oneshot.size(), 8u);
  const size_t page_size = 3;
  const WindowPage first = tree_->QueryWindowPage(lo, hi, page_size);
  ASSERT_TRUE(first.more);
  // Erase the resume key itself, then resume: the scan continues at the
  // first surviving entry strictly z-after the token.
  ASSERT_TRUE(tree_->Erase(first.token));
  Entries rest;
  std::optional<PhKey> token = first.token;
  while (token.has_value()) {
    const WindowPage page = tree_->QueryWindowPage(lo, hi, page_size, *token);
    rest.insert(rest.end(), page.entries.begin(), page.entries.end());
    token = page.more ? std::optional<PhKey>(page.token) : std::nullopt;
  }
  Entries expect(oneshot.begin() + page_size, oneshot.end());
  EXPECT_EQ(rest, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Cursor, TreeCursorTest,
    testing::Values(CursorParam{2, 8, NodeRepr::kAdaptive},
                    CursorParam{2, 16, NodeRepr::kHcOnly},
                    CursorParam{2, 16, NodeRepr::kLhcOnly},
                    CursorParam{3, 10, NodeRepr::kAdaptive},
                    CursorParam{3, 10, NodeRepr::kHcOnly},
                    CursorParam{6, 6, NodeRepr::kAdaptive},
                    CursorParam{6, 6, NodeRepr::kLhcOnly},
                    CursorParam{6, 62, NodeRepr::kAdaptive}),
    CursorParamName);

// ---- Resume mid-node (dense single node) --------------------------------

TEST(TreeCursorResumeTest, ResumesMidNodeInADenseHcNode) {
  // 2-D keys differing only in their lowest bit layer: all 4 children of
  // one maximally dense node. Page size 1 forces a resume inside it.
  PhTreeConfig cfg;
  cfg.repr = NodeRepr::kHcOnly;
  PhTree tree(2, cfg);
  Entries expect;
  for (uint64_t a = 0; a < 2; ++a) {
    for (uint64_t b = 0; b < 2; ++b) {
      const PhKey key{a, b};
      tree.Insert(key, (a << 1) | b);
    }
  }
  for (TreeCursor c(tree); c.Valid(); c.Next()) {
    expect.emplace_back(PhKey(c.key().begin(), c.key().end()), c.value());
  }
  ASSERT_EQ(expect.size(), 4u);
  const PhKey lo{0, 0}, hi{1, 1};
  Entries paged;
  std::optional<PhKey> token;
  for (;;) {
    const WindowPage page = token.has_value()
                                ? tree.QueryWindowPage(lo, hi, 1, *token)
                                : tree.QueryWindowPage(lo, hi, 1);
    paged.insert(paged.end(), page.entries.begin(), page.entries.end());
    if (!page.more) {
      break;
    }
    token = page.token;
  }
  EXPECT_EQ(paged, expect);
}

// ---- Pagination across the concurrent wrappers --------------------------

template <typename Tree>
Entries DrainPages(const Tree& tree, const PhKey& lo, const PhKey& hi,
                   size_t page_size) {
  Entries out;
  std::optional<PhKey> token;
  for (;;) {
    const WindowPage page = token.has_value()
                                ? tree.QueryWindowPage(lo, hi, page_size,
                                                       *token)
                                : tree.QueryWindowPage(lo, hi, page_size);
    out.insert(out.end(), page.entries.begin(), page.entries.end());
    if (!page.more) {
      return out;
    }
    token = page.token;
  }
}

TEST(PaginationVariantsTest, SyncAndShardedAgreeWithPlainTree) {
  constexpr uint32_t kDim = 3;
  constexpr uint32_t kKeyBits = 9;
  Rng rng(0x5ADED);
  PhTree plain(kDim);
  PhTreeSync sync(kDim);
  PhTreeSharded sharded_z(kDim, 4, ShardRouting::kZPrefix);
  PhTreeSharded sharded_h(kDim, 4, ShardRouting::kHash);
  for (size_t i = 0; i < 800; ++i) {
    PhKey key(kDim);
    for (auto& v : key) {
      v = rng.NextU64() & LowMask(kKeyBits);
    }
    plain.Insert(key, i);
    sync.Insert(key, i);
    sharded_z.Insert(key, i);
    sharded_h.Insert(key, i);
  }
  for (int q = 0; q < 25; ++q) {
    PhKey lo(kDim), hi(kDim);
    for (uint32_t d = 0; d < kDim; ++d) {
      uint64_t a = rng.NextU64() & LowMask(kKeyBits);
      uint64_t b = rng.NextU64() & LowMask(kKeyBits);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const size_t page_size = 1 + rng.NextBounded(6);
    const Entries expect = plain.QueryWindow(lo, hi);
    EXPECT_EQ(DrainPages(plain, lo, hi, page_size), expect);
    EXPECT_EQ(DrainPages(sync, lo, hi, page_size), expect);
    EXPECT_EQ(DrainPages(sharded_z, lo, hi, page_size), expect);
    EXPECT_EQ(DrainPages(sharded_h, lo, hi, page_size), expect);
  }
}

}  // namespace
}  // namespace phtree
