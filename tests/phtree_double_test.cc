// Floating-point edge cases for the double front-end (paper Sect. 3.3):
// the order-preserving conversion must make range and kNN queries behave
// exactly as on the raw doubles, across sign boundaries, denormals and
// infinities.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.h"
#include "phtree/knn.h"
#include "phtree/phtree_d.h"

namespace phtree {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PhTreeDoubleEdge, WindowAcrossSignBoundary) {
  PhTreeD tree(1);
  const std::vector<double> values = {-kInf, -1e300, -2.5, -1.0,
                                      -std::numeric_limits<double>::denorm_min(),
                                      0.0, std::numeric_limits<double>::denorm_min(),
                                      1.0, 2.5, 1e300, kInf};
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(tree.Insert(PhKeyD{values[i]}, i));
  }
  // Window straddling zero.
  EXPECT_EQ(tree.CountWindow(PhKeyD{-1.5}, PhKeyD{1.5}), 5u);
  // Everything.
  EXPECT_EQ(tree.CountWindow(PhKeyD{-kInf}, PhKeyD{kInf}), values.size());
  // Negative-only window.
  EXPECT_EQ(tree.CountWindow(PhKeyD{-kInf}, PhKeyD{-1.0}), 4u);
  // Degenerate window on an infinite corner.
  EXPECT_EQ(tree.CountWindow(PhKeyD{kInf}, PhKeyD{kInf}), 1u);
}

TEST(PhTreeDoubleEdge, RandomWindowsOverMixedSigns) {
  PhTreeD tree(2);
  Rng rng(31);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> p{rng.NextDouble(-50, 50), rng.NextDouble(-50, 50)};
    if (tree.Insert(p, i)) {
      points.push_back(p);
    }
  }
  for (int q = 0; q < 40; ++q) {
    double x0 = rng.NextDouble(-60, 60), x1 = rng.NextDouble(-60, 60);
    double y0 = rng.NextDouble(-60, 60), y1 = rng.NextDouble(-60, 60);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    size_t expected = 0;
    for (const auto& p : points) {
      expected += (p[0] >= x0 && p[0] <= x1 && p[1] >= y0 && p[1] <= y1);
    }
    ASSERT_EQ(tree.CountWindow(PhKeyD{x0, y0}, PhKeyD{x1, y1}), expected);
  }
}

TEST(PhTreeDoubleEdge, KeysRoundTripExactly) {
  PhTreeD tree(2);
  Rng rng(33);
  for (int i = 0; i < 1000; ++i) {
    const double a = (rng.NextDouble() - 0.5) *
                     std::exp2(static_cast<double>(rng.NextBounded(600)) - 300);
    const double b = (rng.NextDouble() - 0.5) *
                     std::exp2(static_cast<double>(rng.NextBounded(600)) - 300);
    tree.InsertOrAssign(PhKeyD{a, b}, i);
    ASSERT_TRUE(tree.Contains(PhKeyD{a, b}));
  }
  // Decoded keys from a full-space window equal the originals bit-exactly.
  const auto all = tree.QueryWindow(PhKeyD{-kInf, -kInf}, PhKeyD{kInf, kInf});
  EXPECT_EQ(all.size(), tree.size());
  for (const auto& [key, value] : all) {
    ASSERT_TRUE(tree.Contains(key));
  }
}

TEST(PhTreeDoubleEdge, KnnAcrossSignBoundary) {
  PhTreeD tree(2);
  tree.Insert(PhKeyD{-1.0, 0.0}, 1);
  tree.Insert(PhKeyD{2.0, 0.0}, 2);
  tree.Insert(PhKeyD{0.5, 0.0}, 3);
  const auto res = KnnSearchD(tree.tree(), std::vector<double>{0.0, 0.0}, 3);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].value, 3u);  // 0.5 closest
  EXPECT_EQ(res[1].value, 1u);  // -1.0 next
  EXPECT_EQ(res[2].value, 2u);  // 2.0 last
}

TEST(PhTreeDoubleEdge, ClusterBoundary0p5SplitsHighInTheTree) {
  // Whitebox view of Sect. 4.3.6: keys just below/above 0.5 diverge at the
  // exponent bit, keys around 0.4 share a much longer prefix.
  const uint64_t below5 = SortableDoubleBits(0.4999999);
  const uint64_t above5 = SortableDoubleBits(0.5000001);
  const uint64_t below4 = SortableDoubleBits(0.3999999);
  const uint64_t above4 = SortableDoubleBits(0.4000001);
  const int div5 = 63 - std::countl_zero(below5 ^ above5);
  const int div4 = 63 - std::countl_zero(below4 ^ above4);
  EXPECT_GT(div5, div4 + 10);  // 0.5 diverges >10 bits higher
}

}  // namespace
}  // namespace phtree
