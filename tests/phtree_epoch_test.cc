// Epoch-based reclamation: EpochManager advance rules, the deferred-free
// ordering contract (a retired node's memory stays intact — and is never
// recycled — while any read guard that could see it is open), and the
// fault sweep over the copy-on-write allocation sites. The read-after-
// retire checks double as ASan canaries: if the arena freed (and poisoned)
// a retired node before its grace period, the reads here would abort the
// Asan tier-1 leg.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "phtree/arena.h"
#include "phtree/phtree.h"
#include "phtree/phtree_sync.h"
#include "phtree/validate.h"
#include "testlib/fault_sweep.h"

namespace phtree {
namespace {

TEST(EpochManager, AdvancesFreelyWhenIdle) {
  EpochManager mgr;
  EXPECT_EQ(mgr.epoch(), 1u);
  EXPECT_TRUE(mgr.TryAdvance());
  EXPECT_TRUE(mgr.TryAdvance());
  EXPECT_EQ(mgr.epoch(), 3u);
}

TEST(EpochManager, OpenGuardBoundsAdvanceToOne) {
  EpochManager mgr;
  {
    EpochManager::ReadGuard guard(mgr);
    // The guard announced epoch 1. One advance (to 2) is allowed — the
    // reader provably entered no later than 1 — but a second would let a
    // node retired at 2 be freed under the reader's feet.
    EXPECT_TRUE(mgr.TryAdvance());
    EXPECT_EQ(mgr.epoch(), 2u);
    EXPECT_FALSE(mgr.TryAdvance());
    EXPECT_FALSE(mgr.TryAdvance());
    EXPECT_EQ(mgr.epoch(), 2u);
  }
  EXPECT_TRUE(mgr.TryAdvance());
  EXPECT_EQ(mgr.epoch(), 3u);
}

TEST(EpochManager, SynchronizeFullGraceWaitsForGuards) {
  EpochManager mgr;
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<bool> synced{false};
  std::thread reader([&] {
    EpochManager::ReadGuard guard(mgr);
    entered = true;
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  while (!entered.load()) {
    std::this_thread::yield();
  }
  std::thread syncer([&] {
    mgr.SynchronizeFullGrace();
    synced = true;
  });
  // The syncer cannot finish while the guard is open: it needs two
  // advances past the guard's announcement and the guard blocks all but
  // (at most) one.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(synced.load());
  release = true;
  reader.join();
  syncer.join();
  EXPECT_TRUE(synced.load());
}

PhKey K(uint64_t a, uint64_t b) { return PhKey{a, b}; }

TEST(EpochReclaim, RetiredNodeStaysIntactWhileGuardOpen) {
  EpochManager epochs;
  PhTree tree(2);
  tree.EnableMvcc(&epochs);
  for (uint64_t i = 0; i < 32; ++i) {
    tree.Insert(K(i << 32, i << 16), i);
  }
  const NodeArena* arena = tree.arena();
  ASSERT_NE(arena, nullptr);

  EpochManager::ReadGuard guard(epochs);
  const uint64_t e0 = epochs.epoch();
  const size_t pre_retired = arena->retired_nodes();
  const uint64_t pre_reclaimed = arena->reclaimed_nodes_total();
  // Snapshot the root, then force a copy-on-write of it: a key whose top
  // address bit differs from every setup key (those all have bit 63
  // clear) adds an entry to the root node itself, so the root is cloned,
  // republished, and the old root retired — not freed, our guard is open.
  const Node* old_root = tree.root();
  ASSERT_NE(old_root, nullptr);
  ASSERT_TRUE(tree.Insert(K(uint64_t{1} << 63, 21), 1));
  EXPECT_NE(tree.root(), old_root);
  EXPECT_GE(arena->retired_nodes(), 1u);
  EXPECT_GT(arena->RetiredBytes(), 0u);

  // Churn hard: every mutation tries to reclaim, but while this guard is
  // open the epoch advances at most once past our announcement, so no
  // node retired after we entered can complete its deferred free (only
  // pre-guard retirees, already unreachable to us, may still drain).
  for (uint64_t i = 0; i < 200; ++i) {
    tree.InsertOrAssign(K(i * 2 + 1, i * 2 + 1), i);
    if (i % 3 == 0) {
      tree.Erase(K(i * 2 + 1, i * 2 + 1));
    }
  }
  EXPECT_LE(epochs.epoch(), e0 + 1);
  EXPECT_LE(arena->reclaimed_nodes_total() - pre_reclaimed, pre_retired);
  // ASan canary: the snapshot root must still be fully readable. A
  // premature free would have poisoned the slot and these loads abort.
  EXPECT_EQ(old_root->postfix_len(), kBitWidth - 1);
  EXPECT_GE(old_root->num_entries(), 1u);
}

TEST(EpochReclaim, DeferredFreeCompletesAfterGuardExit) {
  EpochManager epochs;
  PhTree tree(2);
  tree.EnableMvcc(&epochs);
  for (uint64_t i = 0; i < 64; ++i) {
    tree.Insert(K(i * 0x9e3779b97f4a7c15ULL, i), i);
  }
  const NodeArena* arena = tree.arena();
  {
    EpochManager::ReadGuard guard(epochs);
    tree.Insert(K(7, 7), 7);
    ASSERT_GE(arena->retired_nodes(), 1u);
  }
  // Guard closed: each further mutation's Reclaim can advance the epoch
  // once, so after a few of them every earlier retiree is two epochs old
  // and gets its deferred DeleteNode.
  const uint64_t before = arena->reclaimed_nodes_total();
  for (uint64_t i = 0; i < 8; ++i) {
    tree.Insert(K(i + 1000, i + 1000), i);
  }
  EXPECT_GT(arena->reclaimed_nodes_total(), before);
  // Quiescent bookkeeping stays exact with the retired queue counted in.
  EXPECT_EQ(ValidatePhTree(tree), "");
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.memory_bytes + stats.arena_retired_bytes,
            stats.arena_live_bytes);
  EXPECT_GE(stats.epoch, 1u);
  EXPECT_GT(stats.arena_reclaimed_nodes, 0u);
}

TEST(EpochReclaim, ClearRetiresWholeTreeUnderGuard) {
  EpochManager epochs;
  PhTree tree(2);
  tree.EnableMvcc(&epochs);
  for (uint64_t i = 0; i < 128; ++i) {
    tree.Insert(K(i * 0x2545f4914f6cdd1dULL, ~i), i);
  }
  const size_t reachable = tree.ComputeStats().n_nodes;
  EpochManager::ReadGuard guard(epochs);
  const Node* old_root = tree.root();
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.root(), nullptr);
  // Every reachable node of the old tree is retired, none freed (their
  // retire stamp is current, and our guard pins the epoch): a reader
  // mid-traversal keeps a consistent snapshot.
  EXPECT_GE(tree.arena()->retired_nodes(), reachable);
  EXPECT_EQ(old_root->postfix_len(), kBitWidth - 1);  // ASan canary
}

TEST(EpochReclaim, FaultSweepCoversCowAllocationSites) {
  testlib::FaultSweepOptions opts;
  opts.mvcc = true;
  opts.commands.dim = 2;
  opts.ops = 600;
  opts.seed = 20260809;
  opts.deep_every = 64;
  const testlib::FaultSweepReport report = testlib::RunFaultSweep(opts);
  EXPECT_TRUE(report.ok()) << report.failure;
  EXPECT_GT(report.injected_failures, 0u);
}

TEST(EpochReclaim, SyncLoadSwapsUnderLockFreeReaders) {
  const std::string path = testing::TempDir() + "/epoch_load_swap.pht";
  PhTreeSync tree(2);
  for (uint64_t i = 0; i < 512; ++i) {
    tree.Insert(K(i << 40, i << 20), i);
  }
  ASSERT_TRUE(tree.Save(path).ok());
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      uint64_t x = 12345 + static_cast<uint64_t>(t);
      while (!stop.load()) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t i = (x >> 33) % 512;
        // Every saved key must be present in every published tree: the
        // churn below only touches odd low-bit keys and Load restores the
        // same content.
        if (tree.Find(K(i << 40, i << 20)) != std::optional<uint64_t>(i)) {
          failed = true;
        }
      }
    });
  }
  for (int round = 0; round < 5; ++round) {
    for (uint64_t i = 0; i < 200; ++i) {
      tree.InsertOrAssign(K(i * 2 + 1, i * 2 + 1), i);
    }
    ASSERT_TRUE(tree.Load(path).ok());
    EXPECT_EQ(tree.size(), 512u);
  }
  stop = true;
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace phtree
