// Allocation-fault injection: the FaultInjector itself, the Try* status
// API's commit-or-rollback contract on hand-built shapes, and the bounded
// tier-1 run of the exhaustive per-site sweep (testlib/fault_sweep). The
// full 50k-op acceptance sweep is the `fault_sweep_acceptance` ctest in
// fuzz/.
#include <gtest/gtest.h>

#include <new>
#include <vector>

#include "common/fault.h"
#include "phtree/phtree.h"
#include "phtree/validate.h"
#include "testlib/fault_sweep.h"

namespace phtree {
namespace {

/// Installs a FaultInjector for one test body.
class ScopedInjector {
 public:
  ScopedInjector() { SetFaultInjector(&inj_); }
  ~ScopedInjector() { SetFaultInjector(nullptr); }
  FaultInjector* operator->() { return &inj_; }
  FaultInjector& get() { return inj_; }

 private:
  FaultInjector inj_;
};

TEST(FaultInjector, NoInjectorNeverFails) {
  EXPECT_FALSE(FaultHit(FaultSite::kArenaNodeAlloc));
  EXPECT_FALSE(FaultHit(FaultSite::kVfsWrite));
}

TEST(FaultInjector, CountdownFiresExactlyOnce) {
  ScopedInjector inj;
  inj->ArmCountdown(FaultSite::kArenaNodeAlloc, 2);
  EXPECT_FALSE(FaultHit(FaultSite::kArenaNodeAlloc));  // hit 1
  EXPECT_FALSE(FaultHit(FaultSite::kWordAlloc));       // other site: no count
  EXPECT_FALSE(inj->fired());
  EXPECT_TRUE(FaultHit(FaultSite::kArenaNodeAlloc));   // hit 2 fires
  EXPECT_TRUE(inj->fired());
  EXPECT_FALSE(FaultHit(FaultSite::kArenaNodeAlloc));  // one-shot
  EXPECT_EQ(inj->failures(), 1u);
  EXPECT_EQ(inj->site_hits(FaultSite::kArenaNodeAlloc), 3u);
}

TEST(FaultInjector, GlobalIndexCountsAcrossSites) {
  ScopedInjector inj;
  inj->ArmGlobalIndex(2);  // 0-based: the third hit overall
  EXPECT_FALSE(FaultHit(FaultSite::kArenaNodeAlloc));
  EXPECT_FALSE(FaultHit(FaultSite::kWordAlloc));
  EXPECT_TRUE(FaultHit(FaultSite::kVfsWrite));
  EXPECT_TRUE(inj->fired());
}

TEST(FaultInjector, SuspendMasksHits) {
  ScopedInjector inj;
  inj->ArmGlobalIndex(0);
  {
    FaultInjectorSuspend suspend;
    EXPECT_FALSE(FaultHit(FaultSite::kArenaNodeAlloc));
  }
  EXPECT_FALSE(inj->fired());
  EXPECT_TRUE(FaultHit(FaultSite::kArenaNodeAlloc));
  EXPECT_TRUE(inj->fired());
}

TEST(FaultInjector, DisarmStopsInjection) {
  ScopedInjector inj;
  inj->ArmGlobalIndex(0);
  inj->Disarm();
  EXPECT_FALSE(FaultHit(FaultSite::kArenaNodeAlloc));
  EXPECT_FALSE(inj->fired());
}

TEST(TryApi, StatusesWithoutInjection) {
  PhTree tree(2);
  const PhKey a{1, 2};
  EXPECT_EQ(tree.TryInsert(a, 7), OpStatus::kApplied);
  EXPECT_EQ(tree.TryInsert(a, 8), OpStatus::kNoop);  // duplicate
  EXPECT_EQ(tree.Find(a), std::optional<uint64_t>(7));
  EXPECT_EQ(tree.TryInsertOrAssign(a, 9), OpStatus::kNoop);  // overwrote
  EXPECT_EQ(tree.Find(a), std::optional<uint64_t>(9));
  EXPECT_EQ(tree.TryErase(a), OpStatus::kApplied);
  EXPECT_EQ(tree.TryErase(a), OpStatus::kNoop);  // miss
  EXPECT_EQ(tree.size(), 0u);
}

TEST(TryApi, FirstAllocationFailureLeavesEmptyTree) {
  ScopedInjector inj;
  PhTree tree(2);
  const PhKey a{1, 2};
  inj->ArmGlobalIndex(0);
  EXPECT_EQ(tree.TryInsert(a, 7), OpStatus::kNoMem);
  EXPECT_TRUE(inj->fired());
  inj->Disarm();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Find(a).has_value());
  // The same op retried clean must succeed.
  EXPECT_EQ(tree.TryInsert(a, 7), OpStatus::kApplied);
  EXPECT_EQ(tree.Find(a), std::optional<uint64_t>(7));
}

TEST(TryApi, ThrowingApiRollsBackOnEverySite) {
  ScopedInjector inj;
  PhTree tree(2);
  tree.Insert(PhKey{0, 0}, 1);
  tree.Insert(PhKey{~0ull, ~0ull}, 2);  // the next insert splits near the root
  const size_t before = tree.size();
  const PhKey key{~0ull, 0};
  // Probe every allocation-site index of the op; each injected bad_alloc
  // must leave the tree untouched and deep-valid. A split allocates at
  // least once, so index 0 always throws.
  size_t throws = 0;
  for (uint64_t i = 0;; ++i) {
    ASSERT_LT(i, 64u) << "split insert did not run out of fault sites";
    inj->ArmGlobalIndex(i);
    try {
      tree.Insert(key, 3);
      inj->Disarm();
      break;  // op completed (fault exhausted or absorbed)
    } catch (const std::bad_alloc&) {
      inj->Disarm();
      ++throws;
      ASSERT_EQ(tree.size(), before);
      ASSERT_FALSE(tree.Find(key).has_value());
      ASSERT_EQ(ValidatePhTreeDeep(tree), "");
    }
  }
  EXPECT_GE(throws, 1u);
  EXPECT_EQ(tree.size(), before + 1);
  EXPECT_EQ(tree.Find(key), std::optional<uint64_t>(3));
  EXPECT_EQ(ValidatePhTreeDeep(tree), "");
}

TEST(TryApi, BulkLoadKeepsPrefixOnFailure) {
  ScopedInjector inj;
  PhTree tree(2);
  std::vector<PhEntry> entries;
  for (uint64_t i = 0; i < 64; ++i) {
    entries.push_back({{i * 3, i * 5 + 1}, i});
  }
  // Fail the third node allocation: 64 spread keys build many nodes, so
  // this lands mid-batch; each entry is atomic, so the prefix stays.
  inj->ArmCountdown(FaultSite::kArenaNodeAlloc, 3);
  size_t inserted = 0;
  bool threw = false;
  try {
    inserted = tree.BulkLoad(entries);
  } catch (const std::bad_alloc&) {
    threw = true;
  }
  inj->Disarm();
  ASSERT_TRUE(threw);
  (void)inserted;
  EXPECT_GT(tree.size(), 0u);
  EXPECT_LT(tree.size(), entries.size());
  EXPECT_EQ(ValidatePhTreeDeep(tree), "");
  // Every stored entry is a prefix entry with its original payload.
  size_t stored = 0;
  for (const PhEntry& e : entries) {
    const auto found = tree.Find(e.key);
    if (found.has_value()) {
      EXPECT_EQ(*found, e.value);
      ++stored;
    }
  }
  EXPECT_EQ(stored, tree.size());
}

// The bounded tier-1 sweep: every allocation-site index of every mutating
// command in a seeded trace is forced to fail once; each failure must roll
// back to an oracle-identical, deep-valid tree. ~190 mutating ops inject
// over a thousand failures.
TEST(FaultSweep, EveryInjectedFailureRollsBack) {
  testlib::FaultSweepOptions opts;
  opts.ops = 600;
  opts.seed = 42;
  opts.commands.dim = 2;
  opts.commands.grid_bits = 6;  // dense: splits, merges, repr switches
  opts.deep_every = 64;
  const testlib::FaultSweepReport report = testlib::RunFaultSweep(opts);
  EXPECT_TRUE(report.ok()) << report.failure;
  EXPECT_GT(report.ops_run, 0u);
  EXPECT_GT(report.injected_failures, 100u);
  EXPECT_GT(report.deep_checks, 0u);
}

TEST(FaultSweep, HighDimWideNodes) {
  testlib::FaultSweepOptions opts;
  opts.ops = 250;
  opts.seed = 7;
  opts.commands.dim = 6;  // wider nodes: LHC/BHC switches under failure
  opts.commands.grid_bits = 3;
  opts.deep_every = 64;
  const testlib::FaultSweepReport report = testlib::RunFaultSweep(opts);
  EXPECT_TRUE(report.ok()) << report.failure;
  EXPECT_GT(report.injected_failures, 0u);
}

}  // namespace
}  // namespace phtree
