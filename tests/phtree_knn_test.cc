// kNN search (paper Sect. 5 extension): results must match brute force in
// both supported metrics, on uniform and clustered data.
#include "phtree/knn.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "datasets/datasets.h"
#include "phtree/phtree.h"
#include "phtree/phtree_d.h"

namespace phtree {
namespace {

double BruteDist2Int(const PhKey& a, const PhKey& b) {
  double s = 0;
  for (size_t d = 0; d < a.size(); ++d) {
    const double delta =
        static_cast<double>(a[d] > b[d] ? a[d] - b[d] : b[d] - a[d]);
    s += delta * delta;
  }
  return s;
}

TEST(Knn, EmptyTree) {
  PhTree tree(2);
  EXPECT_TRUE(KnnSearch(tree, PhKey{0, 0}, 5).empty());
}

TEST(Knn, ZeroNeighbours) {
  PhTree tree(2);
  tree.Insert(PhKey{1, 1}, 1);
  EXPECT_TRUE(KnnSearch(tree, PhKey{0, 0}, 0).empty());
}

TEST(Knn, FewerEntriesThanRequested) {
  PhTree tree(2);
  tree.Insert(PhKey{1, 1}, 1);
  tree.Insert(PhKey{2, 2}, 2);
  const auto res = KnnSearch(tree, PhKey{0, 0}, 10);
  EXPECT_EQ(res.size(), 2u);
}

TEST(Knn, MatchesBruteForceIntegerMetric) {
  Rng rng(31);
  for (uint32_t dim : {1u, 2u, 3u, 5u}) {
    PhTree tree(dim);
    std::vector<PhKey> keys;
    for (int i = 0; i < 500; ++i) {
      PhKey key(dim);
      for (auto& v : key) {
        v = rng.NextU64() & 0xFFFFFF;
      }
      if (tree.Insert(key, i)) {
        keys.push_back(key);
      }
    }
    for (int q = 0; q < 20; ++q) {
      PhKey center(dim);
      for (auto& v : center) {
        v = rng.NextU64() & 0xFFFFFF;
      }
      const size_t k = 1 + rng.NextBounded(10);
      auto result = KnnSearch(tree, center, k);
      ASSERT_EQ(result.size(), std::min(k, keys.size()));
      // Distances must be ascending.
      for (size_t i = 1; i < result.size(); ++i) {
        EXPECT_LE(result[i - 1].dist2, result[i].dist2);
      }
      // And match the brute-force k smallest distances.
      std::vector<double> all;
      for (const auto& key : keys) {
        all.push_back(BruteDist2Int(center, key));
      }
      std::sort(all.begin(), all.end());
      for (size_t i = 0; i < result.size(); ++i) {
        EXPECT_DOUBLE_EQ(result[i].dist2, all[i]) << "dim=" << dim;
      }
    }
  }
}

TEST(Knn, MatchesBruteForceDoubleMetric) {
  const Dataset ds = GenerateCube(400, 3, 77);
  PhTreeD tree(3);
  for (size_t i = 0; i < ds.n(); ++i) {
    tree.Insert(ds.point(i), i);
  }
  Rng rng(78);
  for (int q = 0; q < 20; ++q) {
    const PhKeyD center{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    const auto result = KnnSearchD(tree.tree(), center, 5);
    ASSERT_EQ(result.size(), 5u);
    std::vector<double> all;
    for (size_t i = 0; i < ds.n(); ++i) {
      const auto pt = ds.point(i);
      double s = 0;
      for (int d = 0; d < 3; ++d) {
        s += (pt[d] - center[d]) * (pt[d] - center[d]);
      }
      all.push_back(s);
    }
    std::sort(all.begin(), all.end());
    for (size_t i = 0; i < result.size(); ++i) {
      EXPECT_NEAR(result[i].dist2, all[i], 1e-12);
    }
  }
}

TEST(Knn, NearestOfExactMatchIsItself) {
  PhTree tree(2);
  Rng rng(41);
  PhKey probe{123456, 654321};
  tree.Insert(probe, 99);
  for (int i = 0; i < 100; ++i) {
    tree.Insert(PhKey{rng.NextU64(), rng.NextU64()}, i);
  }
  const auto res = KnnSearch(tree, probe, 1);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].key, probe);
  EXPECT_EQ(res[0].value, 99u);
  EXPECT_EQ(res[0].dist2, 0.0);
}

TEST(Knn, ClusteredDataBestFirstDoesNotMissNeighbours) {
  const Dataset ds = GenerateCluster(2000, 3, 0.5, 13);
  PhTreeD tree(3);
  for (size_t i = 0; i < ds.n(); ++i) {
    tree.InsertOrAssign(ds.point(i), i);
  }
  const PhKeyD center{0.5, 0.5, 0.5};
  const auto result = KnnSearchD(tree.tree(), center, 20);
  ASSERT_EQ(result.size(), 20u);
  // Brute force over stored (deduplicated) keys.
  std::vector<double> all;
  tree.tree().ForEach([&](const PhKey& k, uint64_t) {
    double s = 0;
    for (int d = 0; d < 3; ++d) {
      const double c = SortableBitsToDouble(k[d]);
      s += (c - center[d]) * (c - center[d]);
    }
    all.push_back(s);
  });
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_NEAR(result[i].dist2, all[i], 1e-12);
  }
}

}  // namespace
}  // namespace phtree
