// Targeted coverage of the deletion restructuring paths (paper Sect. 3.6:
// "at most two nodes are modified"): postfix merge-up and sub-node splice,
// including cascades and interaction with representation switching.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "phtree/phtree.h"
#include "phtree/validate.h"

namespace phtree {
namespace {

// Builds keys that share a long prefix and diverge at chosen bit depths,
// so the resulting chain shape is known exactly.
PhKey KeyWithBits(uint64_t base, std::initializer_list<int> set_bits) {
  uint64_t v = base;
  for (int b : set_bits) {
    v |= uint64_t{1} << b;
  }
  return PhKey{v};
}

TEST(MergeSplice, EraseMergesLastPostfixIntoParent) {
  // Three keys: two diverge deep (forming a child node), one shallower.
  PhTree tree(1);
  const PhKey a = KeyWithBits(0, {1});      // ...0010
  const PhKey b = KeyWithBits(0, {1, 0});   // ...0011
  const PhKey c = KeyWithBits(0, {40});     // diverges at bit 40
  tree.Insert(a, 1);
  tree.Insert(b, 2);
  tree.Insert(c, 3);
  // Structure: root -> node@40 -> {c-postfix, sub -> node@0 {a, b}}.
  ASSERT_EQ(tree.ComputeStats().n_nodes, 3u);
  // Erasing b leaves node@0 with one entry -> must merge `a` upward.
  ASSERT_TRUE(tree.Erase(b));
  EXPECT_EQ(tree.ComputeStats().n_nodes, 2u);
  EXPECT_TRUE(tree.Contains(a));
  EXPECT_TRUE(tree.Contains(c));
  EXPECT_EQ(*tree.Find(a), 1u);
  EXPECT_EQ(ValidatePhTree(tree), "");
}

TEST(MergeSplice, EraseSplicesSingleSubChild) {
  // Force the splice path: a middle node whose only remaining entry is a
  // sub-node. Keys: two deep-diverging keys under a middle node that also
  // holds one postfix; erasing the postfix leaves middle with 1 sub.
  PhTree tree(1);
  const PhKey deep1 = KeyWithBits(0, {50, 1});
  const PhKey deep2 = KeyWithBits(0, {50, 1, 0});
  const PhKey mid = KeyWithBits(0, {50, 30});
  const PhKey other = KeyWithBits(0, {60});
  tree.Insert(deep1, 1);
  tree.Insert(deep2, 2);
  tree.Insert(mid, 3);
  tree.Insert(other, 4);
  // root -> node@60 {other, sub} -> node@30 {mid, sub} -> node@0 {d1,d2}
  const size_t nodes_before = tree.ComputeStats().n_nodes;
  ASSERT_TRUE(tree.Erase(mid));
  // node@30 had {mid-postfix, sub}; now 1 sub -> spliced out: the deep node
  // absorbs its infix.
  EXPECT_EQ(tree.ComputeStats().n_nodes, nodes_before - 1);
  EXPECT_TRUE(tree.Contains(deep1));
  EXPECT_TRUE(tree.Contains(deep2));
  EXPECT_TRUE(tree.Contains(other));
  EXPECT_EQ(ValidatePhTree(tree), "");
  // The spliced structure must equal the from-scratch structure.
  PhTree fresh(1);
  fresh.Insert(deep1, 1);
  fresh.Insert(deep2, 2);
  fresh.Insert(other, 4);
  EXPECT_EQ(tree.ComputeStats().n_nodes, fresh.ComputeStats().n_nodes);
  EXPECT_EQ(tree.ComputeStats().memory_bytes,
            fresh.ComputeStats().memory_bytes);
}

TEST(MergeSplice, RandomisedEraseAlwaysMatchesFreshBuild) {
  // Property: after ANY erase sequence, the tree is bit-identical (in
  // stats) to a tree freshly built from the surviving keys.
  for (uint32_t dim : {1u, 2u, 5u}) {
    Rng rng(0x5EED ^ dim);
    std::vector<PhKey> keys;
    PhTree tree(dim);
    for (int i = 0; i < 600; ++i) {
      PhKey key(dim);
      for (auto& v : key) {
        v = rng.NextU64() & LowMask(10);  // dense, collision-rich
      }
      if (tree.Insert(key, i)) {
        keys.push_back(key);
      }
    }
    // Erase a random half.
    std::vector<PhKey> survivors;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (rng.NextBool(0.5)) {
        ASSERT_TRUE(tree.Erase(keys[i]));
      } else {
        survivors.push_back(keys[i]);
      }
    }
    PhTree fresh(dim);
    for (size_t i = 0; i < survivors.size(); ++i) {
      fresh.Insert(survivors[i], i);
    }
    const auto a = tree.ComputeStats();
    const auto b = fresh.ComputeStats();
    EXPECT_EQ(a.n_nodes, b.n_nodes) << "dim " << dim;
    EXPECT_EQ(a.n_hc_nodes, b.n_hc_nodes) << "dim " << dim;
    EXPECT_EQ(a.memory_bytes, b.memory_bytes) << "dim " << dim;
    EXPECT_EQ(a.max_depth, b.max_depth) << "dim " << dim;
    EXPECT_EQ(ValidatePhTree(tree), "");
  }
}

TEST(MergeSplice, SetModeRestructuringKeepsInvariants) {
  PhTreeConfig cfg;
  cfg.store_values = false;
  PhTree tree(3, cfg);
  Rng rng(77);
  std::vector<PhKey> keys;
  for (int i = 0; i < 800; ++i) {
    PhKey key(3);
    for (auto& v : key) {
      v = rng.NextU64() & LowMask(8);
    }
    if (tree.Insert(key, 0)) {
      keys.push_back(key);
    }
  }
  ASSERT_EQ(ValidatePhTree(tree), "");
  for (size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(tree.Erase(keys[i]));
  }
  ASSERT_EQ(ValidatePhTree(tree), "");
  for (size_t i = 1; i < keys.size(); i += 2) {
    ASSERT_TRUE(tree.Contains(keys[i]));
  }
}

TEST(MergeSplice, RootIsNeverMergedAway) {
  PhTree tree(2);
  tree.Insert(PhKey{1, 1}, 1);
  tree.Insert(PhKey{1ULL << 63, 1}, 2);  // differs in the very first bit
  // Root holds two postfixes; erasing one leaves the root with a single
  // entry — allowed for the root only.
  ASSERT_TRUE(tree.Erase(PhKey{1, 1}));
  ASSERT_NE(tree.root(), nullptr);
  EXPECT_EQ(tree.root()->num_entries(), 1u);
  EXPECT_EQ(ValidatePhTree(tree), "");
  EXPECT_TRUE(tree.Contains(PhKey{1ULL << 63, 1}));
}

}  // namespace
}  // namespace phtree
