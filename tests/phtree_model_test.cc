// Model-based property tests: a PhTree under random insert / erase / find
// sequences must behave exactly like a std::map over the same keys, under
// every node-representation policy and across dimensionalities; the deep
// structural validator (prefix reconstruction, self-lookup, stats and arena
// accounting cross-checks) must hold after every batch.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "phtree/phtree.h"
#include "phtree/validate.h"

namespace phtree {
namespace {

struct ModelParam {
  uint32_t dim;
  NodeRepr repr;
  uint32_t key_bits;  // restrict keys to the low `key_bits` bits (collisions!)
  bool store_values = true;
};

std::string ParamName(const testing::TestParamInfo<ModelParam>& info) {
  const char* repr = info.param.repr == NodeRepr::kAdaptive ? "Adaptive"
                     : info.param.repr == NodeRepr::kLhcOnly ? "LhcOnly"
                                                             : "HcOnly";
  return "dim" + std::to_string(info.param.dim) + repr + "bits" +
         std::to_string(info.param.key_bits) +
         (info.param.store_values ? "" : "Set");
}

class PhTreeModelTest : public testing::TestWithParam<ModelParam> {};

PhKey RandomKey(Rng& rng, uint32_t dim, uint32_t key_bits) {
  PhKey key(dim);
  for (auto& v : key) {
    v = rng.NextU64() & LowMask(key_bits);
  }
  return key;
}

TEST_P(PhTreeModelTest, MatchesStdMapUnderRandomOps) {
  const ModelParam p = GetParam();
  PhTreeConfig cfg;
  cfg.repr = p.repr;
  cfg.store_values = p.store_values;
  PhTree tree(p.dim, cfg);
  std::map<PhKey, uint64_t> model;
  Rng rng(0xC0FFEE ^ p.dim ^ (p.key_bits << 8) ^
          (static_cast<uint64_t>(p.repr) << 16) ^
          (p.store_values ? 0 : 1u << 20));

  const int kIterations = 6000;
  for (int iter = 0; iter < kIterations; ++iter) {
    const uint64_t op = rng.NextBounded(10);
    PhKey key = RandomKey(rng, p.dim, p.key_bits);
    if (op < 5) {  // insert
      const uint64_t value = rng.NextU64();
      const bool expect_new = model.find(key) == model.end();
      EXPECT_EQ(tree.Insert(key, value), expect_new);
      if (expect_new) {
        model[key] = value;
      }
    } else if (op < 8) {  // erase (biased to existing keys half the time)
      if (!model.empty() && rng.NextBool(0.5)) {
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(model.size())));
        key = it->first;
      }
      const bool expect_hit = model.find(key) != model.end();
      EXPECT_EQ(tree.Erase(key), expect_hit);
      model.erase(key);
    } else {  // find
      if (!model.empty() && rng.NextBool(0.5)) {
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(model.size())));
        key = it->first;
      }
      const auto found = tree.Find(key);
      const auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(found.has_value());
      } else {
        ASSERT_TRUE(found.has_value());
        // Key-only trees report presence but store no payload.
        EXPECT_EQ(*found, p.store_values ? it->second : 0);
      }
    }
    ASSERT_EQ(tree.size(), model.size());
    if (iter % 500 == 499) {
      ASSERT_EQ(ValidatePhTreeDeep(tree), "") << "iteration " << iter;
    }
  }

  // Full content check via ForEach.
  std::map<PhKey, uint64_t> dumped;
  tree.ForEach([&](const PhKey& k, uint64_t v) { dumped[k] = v; });
  if (p.store_values) {
    EXPECT_EQ(dumped, model);
  } else {
    ASSERT_EQ(dumped.size(), model.size());
    for (const auto& [k, v] : dumped) {
      EXPECT_EQ(v, 0u);
      EXPECT_TRUE(model.count(k));
    }
  }

  // Drain the tree; every erase must succeed.
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(tree.Erase(key));
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.root(), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PhTreeModelTest,
    testing::Values(
        // Full-width keys across dimensionalities and policies.
        ModelParam{1, NodeRepr::kAdaptive, 64},
        ModelParam{2, NodeRepr::kAdaptive, 64},
        ModelParam{3, NodeRepr::kAdaptive, 64},
        ModelParam{8, NodeRepr::kAdaptive, 64},
        ModelParam{16, NodeRepr::kAdaptive, 64},
        ModelParam{40, NodeRepr::kAdaptive, 64},
        ModelParam{63, NodeRepr::kAdaptive, 64},
        ModelParam{2, NodeRepr::kLhcOnly, 64},
        ModelParam{8, NodeRepr::kLhcOnly, 64},
        ModelParam{2, NodeRepr::kHcOnly, 64},
        ModelParam{8, NodeRepr::kHcOnly, 64},
        // Narrow key ranges force deep prefix sharing and dense nodes.
        ModelParam{1, NodeRepr::kAdaptive, 4},
        ModelParam{2, NodeRepr::kAdaptive, 3},
        ModelParam{2, NodeRepr::kAdaptive, 8},
        ModelParam{3, NodeRepr::kAdaptive, 2},
        ModelParam{8, NodeRepr::kAdaptive, 1},
        ModelParam{16, NodeRepr::kAdaptive, 2},
        ModelParam{2, NodeRepr::kLhcOnly, 4},
        ModelParam{2, NodeRepr::kHcOnly, 4},
        ModelParam{8, NodeRepr::kHcOnly, 2},
        // Key-only ("set") mode: no payload slots for postfix entries.
        ModelParam{2, NodeRepr::kAdaptive, 64, false},
        ModelParam{3, NodeRepr::kAdaptive, 64, false},
        ModelParam{8, NodeRepr::kAdaptive, 64, false},
        ModelParam{2, NodeRepr::kAdaptive, 4, false},
        ModelParam{3, NodeRepr::kAdaptive, 2, false},
        ModelParam{8, NodeRepr::kAdaptive, 1, false},
        ModelParam{2, NodeRepr::kHcOnly, 4, false},
        ModelParam{2, NodeRepr::kLhcOnly, 4, false},
        ModelParam{16, NodeRepr::kAdaptive, 2, false}),
    ParamName);

// Hysteresis sweep: the switching rule must stay consistent for any band.
class PhTreeHysteresisTest : public testing::TestWithParam<double> {};

TEST_P(PhTreeHysteresisTest, ValidatorHoldsUnderChurn) {
  PhTreeConfig cfg;
  cfg.hysteresis = GetParam();
  PhTree tree(3, cfg);
  Rng rng(99);
  std::vector<PhKey> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back(RandomKey(rng, 3, 6));
  }
  for (const auto& k : keys) {
    tree.Insert(k, 1);
  }
  ASSERT_EQ(ValidatePhTreeDeep(tree), "");
  // Churn: alternate erase/insert of the same keys (oscillation trigger).
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < keys.size(); i += 2) {
      tree.Erase(keys[i]);
    }
    ASSERT_EQ(ValidatePhTreeDeep(tree), "") << "round " << round;
    for (size_t i = 0; i < keys.size(); i += 2) {
      tree.Insert(keys[i], 2);
    }
    ASSERT_EQ(ValidatePhTreeDeep(tree), "") << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, PhTreeHysteresisTest,
                         testing::Values(1.0, 0.9, 0.5));

}  // namespace
}  // namespace phtree
