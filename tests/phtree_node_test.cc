// Node-level behaviour: HC/LHC representation choice and switching
// (paper Sect. 3.2), space bookkeeping, and the paper's space cases
// (Sect. 3.4).
#include "phtree/node.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "phtree/phtree.h"
#include "phtree/stats.h"
#include "phtree/validate.h"

namespace phtree {
namespace {

PhKey Key2(uint64_t x, uint64_t y) { return PhKey{x, y}; }

TEST(NodeRepresentation, DenseLowDimLeafNodesUseBhc) {
  // k=2: filling all 4 slots of a leaf node must leave LHC (paper: the
  // bottom node of Fig. 2 "would be stored in HC representation"; our BHC
  // packed-leaf refinement strictly beats HC on every sub-free node, so the
  // dense leaf lands there instead).
  PhTree tree(2);
  for (uint64_t x = 0; x < 2; ++x) {
    for (uint64_t y = 0; y < 2; ++y) {
      tree.Insert(Key2(x, y), x * 2 + y);
    }
  }
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_GE(stats.n_bhc_nodes, 1u);
  EXPECT_EQ(stats.n_hc_nodes, 0u);
  EXPECT_EQ(ValidatePhTree(tree), "");
}

TEST(NodeRepresentation, SparseHighDimNodesUseLhc) {
  // k=16 with 2 entries: HC would need 2^16 slots; must stay LHC.
  PhTree tree(16);
  PhKey a(16, 123456), b(16, 123456);
  b[15] ^= 1;
  tree.Insert(a, 1);
  tree.Insert(b, 2);
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.n_hc_nodes, 0u);
  EXPECT_EQ(stats.n_lhc_nodes, stats.n_nodes);
}

TEST(NodeRepresentation, SwitchesBackToLhcOnDeletion) {
  PhTreeConfig cfg;  // strict switching
  PhTree tree(2, cfg);
  // Build a dense subtree in [0,2)x[0,2) under a shared prefix.
  for (uint64_t x = 0; x < 2; ++x) {
    for (uint64_t y = 0; y < 2; ++y) {
      tree.Insert(Key2(x, y), 0);
    }
  }
  PhTreeStats stats = tree.ComputeStats();
  ASSERT_GE(stats.n_bhc_nodes, 1u);
  // Erase until sparse: representation must follow the size rule again.
  tree.Erase(Key2(0, 0));
  tree.Erase(Key2(0, 1));
  EXPECT_EQ(ValidatePhTree(tree), "");
}

TEST(NodeRepresentation, HcOnlyPolicyForcesHc) {
  PhTreeConfig cfg;
  cfg.repr = NodeRepr::kHcOnly;
  PhTree tree(3, cfg);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(PhKey{rng.NextU64(), rng.NextU64(), rng.NextU64()}, i);
  }
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.n_hc_nodes, stats.n_nodes);
  EXPECT_EQ(ValidatePhTree(tree), "");
}

TEST(NodeRepresentation, LhcOnlyPolicyForcesLhc) {
  PhTreeConfig cfg;
  cfg.repr = NodeRepr::kLhcOnly;
  PhTree tree(2, cfg);
  for (uint64_t x = 0; x < 4; ++x) {
    for (uint64_t y = 0; y < 4; ++y) {
      tree.Insert(Key2(x, y), 0);
    }
  }
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.n_hc_nodes, 0u);
  EXPECT_EQ(ValidatePhTree(tree), "");
}

TEST(NodeRepresentation, HcNeverUsedAboveMaxDim) {
  PhTreeConfig cfg;
  cfg.repr = NodeRepr::kHcOnly;  // even when forced
  cfg.hc_max_dim = 10;
  PhTree tree(24, cfg);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    PhKey key(24);
    for (auto& v : key) {
      v = rng.NextBounded(2);  // boolean data: maximally dense addresses
    }
    tree.InsertOrAssign(key, i);
  }
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.n_hc_nodes, 0u);
}

TEST(NodeSpace, SmallestRepresentationWinsExactly) {
  // Whitebox size check on a standalone node.
  PhTreeConfig cfg;
  Node node(2, 0, 3);  // k=2, postfix 3 bits -> stride 6 bits
  PhKey key{0, 0};
  // 1 entry: LHC (1 payload word + 1 flag + 2 addr + 6 postfix bits) is far
  // below HC (4 slots x (64+2+6) bits) -> LHC.
  node.InsertPostfix(0, key, 0, cfg);
  EXPECT_FALSE(node.is_hc());
  EXPECT_FALSE(node.is_bhc());
  EXPECT_LT(node.LhcBits(), node.HcBits());
  // Fill all 4 slots: LHC pays k=2 address bits per entry, HC does not ->
  // HC is smaller by (k-1) bits per slot (paper Sect. 3.2). The packed leaf
  // (BHC) drops the empty payload slots and the sub bitmap on top of that,
  // so a full sub-free node lands in BHC, strictly below both.
  key = PhKey{1, 0};
  node.InsertPostfix(2, key, 0, cfg);
  key = PhKey{0, 1};
  node.InsertPostfix(1, key, 0, cfg);
  key = PhKey{1, 1};
  node.InsertPostfix(3, key, 0, cfg);
  EXPECT_TRUE(node.is_bhc());
  EXPECT_LT(node.HcBits(), node.LhcBits());
  EXPECT_LT(node.BhcBits(), node.HcBits());
  EXPECT_LT(node.BhcBits(), node.LhcBits());
}

TEST(NodeSpace, MemoryScalesWithPostfixLengthNotBitWidth) {
  // Prefix sharing (Sect. 3.4): clustered keys must take fewer bytes per
  // entry than scattered keys, because their postfixes are shorter.
  Rng rng(8);
  PhTree clustered(2);
  PhTree scattered(2);
  for (int i = 0; i < 2000; ++i) {
    // Clustered: all keys share the top ~48 bits.
    clustered.Insert(
        Key2(0xABCDEF0000ULL << 24 | (rng.NextU64() & 0xFFFF),
             0x123456789AULL << 24 | (rng.NextU64() & 0xFFFF)),
        i);
    scattered.Insert(Key2(rng.NextU64(), rng.NextU64()), i);
  }
  const auto cs = clustered.ComputeStats();
  const auto ss = scattered.ComputeStats();
  EXPECT_LT(cs.BytesPerEntry(), ss.BytesPerEntry());
}

TEST(NodeSpace, PowersOfTwoWorstCaseStillBounded) {
  // Paper Fig. 4b: powers of two create one node per entry (bad
  // entry-to-node ratio), but the ratio stays > 1 and depth <= w.
  PhTree tree(1);
  tree.Insert(PhKey{0}, 0);
  for (uint32_t b = 0; b < 64; ++b) {
    tree.Insert(PhKey{uint64_t{1} << b}, b);
  }
  const PhTreeStats stats = tree.ComputeStats();
  // 65 entries, 64 nodes: one node per entry except the root holding two
  // (paper Fig. 4b: n / n_node = 5/4 for {0,1,2,4,8}).
  EXPECT_EQ(stats.n_nodes, 64u);
  EXPECT_GT(stats.EntryToNodeRatio(), 1.0);
  EXPECT_LE(stats.max_depth, 64u);
}

TEST(NodeSpace, StatsCountsAreConsistent) {
  Rng rng(10);
  PhTree tree(3);
  size_t n = 0;
  for (int i = 0; i < 3000; ++i) {
    n += tree.Insert(PhKey{rng.NextU64() & 0xFFFFF, rng.NextU64() & 0xFFFFF,
                           rng.NextU64() & 0xFFFFF},
                     i)
             ? 1
             : 0;
  }
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.n_entries, n);
  EXPECT_EQ(stats.n_postfix_entries, n);
  EXPECT_EQ(stats.n_hc_nodes + stats.n_lhc_nodes + stats.n_bhc_nodes,
            stats.n_nodes);
  EXPECT_EQ(stats.hc_node_bytes + stats.lhc_node_bytes + stats.bhc_node_bytes,
            stats.memory_bytes);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_GE(stats.max_depth, 1u);
  EXPECT_LE(stats.max_depth, 64u);
}

TEST(NodeRepresentation, BhcPromotionAndDemotionAtSwitchBoundary) {
  // Whitebox: with k=2, postfix 3 bits and no infix, the exact sizes are
  // LHC = 73n bits and BHC = 70n + 4 bits, so the strict smaller-wins rule
  // places the boundary between n=1 (LHC) and n=2 (BHC). Walk the node
  // across the boundary in both directions and check that the chosen
  // representation is the argmin after every single mutation.
  PhTreeConfig cfg;  // strict: hysteresis = 1.0
  Node node(2, 0, 3);
  const uint64_t addrs[4] = {0, 2, 1, 3};
  const PhKey keys[4] = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  for (int i = 0; i < 4; ++i) {
    node.InsertPostfix(addrs[i], keys[i], 0, cfg);
    const uint64_t best = std::min(
        {node.LhcBits(), node.BhcBits(), node.HcBits()});
    EXPECT_EQ(node.is_bhc(), node.BhcBits() < node.LhcBits() &&
                                 node.BhcBits() <= node.HcBits())
        << "n=" << i + 1;
    EXPECT_EQ(node.CurrentReprBits(), best) << "n=" << i + 1;
  }
  EXPECT_TRUE(node.is_bhc());
  // Demote by deletion: at n=1 LHC is strictly smaller again.
  for (int i = 3; i >= 1; --i) {
    node.RemoveEntry(addrs[i], cfg);
  }
  EXPECT_EQ(node.num_entries(), 1u);
  EXPECT_FALSE(node.is_bhc());
  EXPECT_LT(node.LhcBits(), node.BhcBits());
}

TEST(NodeRepresentation, HysteresisDampsOscillationAtBoundary) {
  // Alternating insert/erase exactly across the n=1 <-> n=2 boundary.
  // Strict switching flips LHC <-> BHC on every operation; a hysteresis
  // band keeps the node in LHC throughout (BHC at n=2 is only ~1.4% below
  // LHC, inside the band), at identical entry content.
  PhTreeConfig strict;
  PhTreeConfig damped;
  damped.hysteresis = 0.9;
  Node flappy(2, 0, 3);
  Node steady(2, 0, 3);
  const PhKey k0{0, 0};
  const PhKey k1{1, 1};
  flappy.InsertPostfix(0, k0, 0, strict);
  steady.InsertPostfix(0, k0, 0, damped);
  for (int round = 0; round < 8; ++round) {
    flappy.InsertPostfix(3, k1, 0, strict);
    steady.InsertPostfix(3, k1, 0, damped);
    EXPECT_TRUE(flappy.is_bhc());   // strict: promoted every round
    EXPECT_FALSE(steady.is_bhc());  // damped: stays put
    flappy.RemoveEntry(3, strict);
    steady.RemoveEntry(3, damped);
    EXPECT_FALSE(flappy.is_bhc());  // strict: demoted every round
    EXPECT_FALSE(steady.is_bhc());
  }
}

TEST(NodeRepresentation, IllegalBhcConvertsEvenInsideHysteresisBand) {
  // A BHC node that gains a sub-node entry must leave BHC unconditionally —
  // the hysteresis band never keeps an illegal representation alive.
  PhTreeConfig damped;
  damped.hysteresis = 0.5;
  Node node(2, 0, 3);
  const PhKey keys[3] = {{0, 0}, {1, 0}, {0, 1}};
  const uint64_t addrs[3] = {0, 2, 1};
  for (int i = 0; i < 3; ++i) {
    node.InsertPostfix(addrs[i], keys[i], 0, damped);
  }
  // Force the packed leaf (legal: sub-free), then attach a child.
  ASSERT_EQ(node.num_subs(), 0u);
  PhTreeConfig force_bhc = damped;
  force_bhc.repr = NodeRepr::kBhcOnly;
  node.RemoveEntry(addrs[2], force_bhc);  // any mutation re-evaluates
  ASSERT_TRUE(node.is_bhc());
  node.InsertSub(3, NodeHandle{7}, damped);
  EXPECT_FALSE(node.is_bhc());
  EXPECT_EQ(node.num_subs(), 1u);
  ASSERT_NE(node.FindOrdinal(3), Node::kNoOrdinal);
  EXPECT_EQ(node.OrdinalSub(node.FindOrdinal(3)), NodeHandle{7});
}

TEST(NodeRepresentation, TreeChurnAcrossBoundaryStaysValid) {
  // Tree-level churn around dense 2x2 leaves: every insert/erase crosses
  // promotion/demotion boundaries somewhere in the tree. ValidatePhTree
  // re-derives the representation rule (including the hysteresis band) for
  // every node, so a single stale or thrashing node fails the walk.
  for (const double h : {1.0, 0.9}) {
    PhTreeConfig cfg;
    cfg.hysteresis = h;
    PhTree tree(2, cfg);
    Rng rng(123);
    std::vector<PhKey> live;
    for (int op = 0; op < 4000; ++op) {
      if (live.empty() || rng.NextBounded(3) != 0) {
        PhKey key = Key2(rng.NextBounded(64), rng.NextBounded(64));
        if (tree.Insert(key, op)) {
          live.push_back(key);
        }
      } else {
        const size_t pick = rng.NextBounded(live.size());
        EXPECT_TRUE(tree.Erase(live[pick]));
        live[pick] = live.back();
        live.pop_back();
      }
      if (op % 500 == 0) {
        ASSERT_EQ(ValidatePhTree(tree), "") << "h=" << h << " op=" << op;
      }
    }
    EXPECT_EQ(tree.size(), live.size());
    ASSERT_EQ(ValidatePhTree(tree), "") << "h=" << h;
  }
}

TEST(NodeWhitebox, InfixRoundTrip) {
  Node node(3, 7, 20);
  PhKey key{0x0ABCDEF012345678ULL, 0x1122334455667788ULL,
            0xFEDCBA9876543210ULL};
  node.SetInfixFromKey(key);
  EXPECT_EQ(node.MatchInfix(key), -1);
  PhKey out{0, 0, 0};
  node.ReadInfixInto(out);
  for (int d = 0; d < 3; ++d) {
    const uint64_t mask = LowMask(7) << 21;  // bits [21,27]
    EXPECT_EQ(out[d] & mask, key[d] & mask);
  }
  // A mismatch in the highest infix bit reports bit index pl+il = 27.
  PhKey bad = key;
  bad[1] ^= uint64_t{1} << 27;
  EXPECT_EQ(node.MatchInfix(bad), 27);
  // A mismatch in the lowest infix bit reports bit index pl+1 = 21.
  bad = key;
  bad[2] ^= uint64_t{1} << 21;
  EXPECT_EQ(node.MatchInfix(bad), 21);
  // Bits outside the infix range are ignored.
  bad = key;
  bad[0] ^= uint64_t{1} << 20;
  bad[0] ^= uint64_t{1} << 28;
  EXPECT_EQ(node.MatchInfix(bad), -1);
}

TEST(NodeWhitebox, PostfixDivergenceFindsHighestBit) {
  PhTreeConfig cfg;
  Node node(2, 0, 33);
  PhKey key{0x1ABCDEF55ULL & LowMask(33), 0x012345678ULL & LowMask(33)};
  node.InsertPostfix(HcAddressAt(key, 33), key, 7, cfg);
  const uint64_t ord = node.FindOrdinal(HcAddressAt(key, 33));
  ASSERT_NE(ord, Node::kNoOrdinal);
  EXPECT_EQ(node.PostfixDivergence(ord, key), -1);
  PhKey other = key;
  other[1] ^= uint64_t{1} << 30;
  other[0] ^= uint64_t{1} << 5;
  EXPECT_EQ(node.PostfixDivergence(ord, other), 30);
  PhKey read{0, 0};
  node.ReadPostfixInto(ord, read);
  EXPECT_EQ(read[0], key[0] & LowMask(33));
  EXPECT_EQ(read[1], key[1] & LowMask(33));
}

}  // namespace
}  // namespace phtree
