// Node-level behaviour: HC/LHC representation choice and switching
// (paper Sect. 3.2), space bookkeeping, and the paper's space cases
// (Sect. 3.4).
#include "phtree/node.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "phtree/phtree.h"
#include "phtree/stats.h"
#include "phtree/validate.h"

namespace phtree {
namespace {

PhKey Key2(uint64_t x, uint64_t y) { return PhKey{x, y}; }

TEST(NodeRepresentation, DenseLowDimNodesUseHc) {
  // k=2: filling all 4 slots of a node must flip it to HC (paper: the
  // bottom node of Fig. 2 "would be stored in HC representation").
  PhTree tree(2);
  for (uint64_t x = 0; x < 2; ++x) {
    for (uint64_t y = 0; y < 2; ++y) {
      tree.Insert(Key2(x, y), x * 2 + y);
    }
  }
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_GE(stats.n_hc_nodes, 1u);
  EXPECT_EQ(ValidatePhTree(tree), "");
}

TEST(NodeRepresentation, SparseHighDimNodesUseLhc) {
  // k=16 with 2 entries: HC would need 2^16 slots; must stay LHC.
  PhTree tree(16);
  PhKey a(16, 123456), b(16, 123456);
  b[15] ^= 1;
  tree.Insert(a, 1);
  tree.Insert(b, 2);
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.n_hc_nodes, 0u);
  EXPECT_EQ(stats.n_lhc_nodes, stats.n_nodes);
}

TEST(NodeRepresentation, SwitchesBackToLhcOnDeletion) {
  PhTreeConfig cfg;  // strict switching
  PhTree tree(2, cfg);
  // Build a dense subtree in [0,2)x[0,2) under a shared prefix.
  for (uint64_t x = 0; x < 2; ++x) {
    for (uint64_t y = 0; y < 2; ++y) {
      tree.Insert(Key2(x, y), 0);
    }
  }
  PhTreeStats stats = tree.ComputeStats();
  ASSERT_GE(stats.n_hc_nodes, 1u);
  // Erase until sparse: representation must follow the size rule again.
  tree.Erase(Key2(0, 0));
  tree.Erase(Key2(0, 1));
  EXPECT_EQ(ValidatePhTree(tree), "");
}

TEST(NodeRepresentation, HcOnlyPolicyForcesHc) {
  PhTreeConfig cfg;
  cfg.repr = NodeRepr::kHcOnly;
  PhTree tree(3, cfg);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(PhKey{rng.NextU64(), rng.NextU64(), rng.NextU64()}, i);
  }
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.n_hc_nodes, stats.n_nodes);
  EXPECT_EQ(ValidatePhTree(tree), "");
}

TEST(NodeRepresentation, LhcOnlyPolicyForcesLhc) {
  PhTreeConfig cfg;
  cfg.repr = NodeRepr::kLhcOnly;
  PhTree tree(2, cfg);
  for (uint64_t x = 0; x < 4; ++x) {
    for (uint64_t y = 0; y < 4; ++y) {
      tree.Insert(Key2(x, y), 0);
    }
  }
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.n_hc_nodes, 0u);
  EXPECT_EQ(ValidatePhTree(tree), "");
}

TEST(NodeRepresentation, HcNeverUsedAboveMaxDim) {
  PhTreeConfig cfg;
  cfg.repr = NodeRepr::kHcOnly;  // even when forced
  cfg.hc_max_dim = 10;
  PhTree tree(24, cfg);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    PhKey key(24);
    for (auto& v : key) {
      v = rng.NextBounded(2);  // boolean data: maximally dense addresses
    }
    tree.InsertOrAssign(key, i);
  }
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.n_hc_nodes, 0u);
}

TEST(NodeSpace, HcBeatsLhcExactlyWhenSmaller) {
  // Whitebox size check on a standalone node.
  PhTreeConfig cfg;
  Node node(2, 0, 3);  // k=2, postfix 3 bits -> stride 6 bits
  PhKey key{0, 0};
  // 1 entry: LHC (1 payload word + 1 flag + 2 addr + 6 postfix bits) is far
  // below HC (4 slots x (64+2+6) bits) -> LHC.
  node.InsertPostfix(0, key, 0, cfg);
  EXPECT_FALSE(node.is_hc());
  EXPECT_LT(node.LhcBits(), node.HcBits());
  // Fill all 4 slots: LHC pays k=2 address bits per entry, HC does not ->
  // HC is smaller by (k-1) bits per slot (paper Sect. 3.2).
  key = PhKey{1, 0};
  node.InsertPostfix(2, key, 0, cfg);
  key = PhKey{0, 1};
  node.InsertPostfix(1, key, 0, cfg);
  key = PhKey{1, 1};
  node.InsertPostfix(3, key, 0, cfg);
  EXPECT_TRUE(node.is_hc());
  EXPECT_LT(node.HcBits(), node.LhcBits());
}

TEST(NodeSpace, MemoryScalesWithPostfixLengthNotBitWidth) {
  // Prefix sharing (Sect. 3.4): clustered keys must take fewer bytes per
  // entry than scattered keys, because their postfixes are shorter.
  Rng rng(8);
  PhTree clustered(2);
  PhTree scattered(2);
  for (int i = 0; i < 2000; ++i) {
    // Clustered: all keys share the top ~48 bits.
    clustered.Insert(
        Key2(0xABCDEF0000ULL << 24 | (rng.NextU64() & 0xFFFF),
             0x123456789AULL << 24 | (rng.NextU64() & 0xFFFF)),
        i);
    scattered.Insert(Key2(rng.NextU64(), rng.NextU64()), i);
  }
  const auto cs = clustered.ComputeStats();
  const auto ss = scattered.ComputeStats();
  EXPECT_LT(cs.BytesPerEntry(), ss.BytesPerEntry());
}

TEST(NodeSpace, PowersOfTwoWorstCaseStillBounded) {
  // Paper Fig. 4b: powers of two create one node per entry (bad
  // entry-to-node ratio), but the ratio stays > 1 and depth <= w.
  PhTree tree(1);
  tree.Insert(PhKey{0}, 0);
  for (uint32_t b = 0; b < 64; ++b) {
    tree.Insert(PhKey{uint64_t{1} << b}, b);
  }
  const PhTreeStats stats = tree.ComputeStats();
  // 65 entries, 64 nodes: one node per entry except the root holding two
  // (paper Fig. 4b: n / n_node = 5/4 for {0,1,2,4,8}).
  EXPECT_EQ(stats.n_nodes, 64u);
  EXPECT_GT(stats.EntryToNodeRatio(), 1.0);
  EXPECT_LE(stats.max_depth, 64u);
}

TEST(NodeSpace, StatsCountsAreConsistent) {
  Rng rng(10);
  PhTree tree(3);
  size_t n = 0;
  for (int i = 0; i < 3000; ++i) {
    n += tree.Insert(PhKey{rng.NextU64() & 0xFFFFF, rng.NextU64() & 0xFFFFF,
                           rng.NextU64() & 0xFFFFF},
                     i)
             ? 1
             : 0;
  }
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.n_entries, n);
  EXPECT_EQ(stats.n_postfix_entries, n);
  EXPECT_EQ(stats.n_hc_nodes + stats.n_lhc_nodes, stats.n_nodes);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_GE(stats.max_depth, 1u);
  EXPECT_LE(stats.max_depth, 64u);
}

TEST(NodeWhitebox, InfixRoundTrip) {
  Node node(3, 7, 20);
  PhKey key{0x0ABCDEF012345678ULL, 0x1122334455667788ULL,
            0xFEDCBA9876543210ULL};
  node.SetInfixFromKey(key);
  EXPECT_EQ(node.MatchInfix(key), -1);
  PhKey out{0, 0, 0};
  node.ReadInfixInto(out);
  for (int d = 0; d < 3; ++d) {
    const uint64_t mask = LowMask(7) << 21;  // bits [21,27]
    EXPECT_EQ(out[d] & mask, key[d] & mask);
  }
  // A mismatch in the highest infix bit reports bit index pl+il = 27.
  PhKey bad = key;
  bad[1] ^= uint64_t{1} << 27;
  EXPECT_EQ(node.MatchInfix(bad), 27);
  // A mismatch in the lowest infix bit reports bit index pl+1 = 21.
  bad = key;
  bad[2] ^= uint64_t{1} << 21;
  EXPECT_EQ(node.MatchInfix(bad), 21);
  // Bits outside the infix range are ignored.
  bad = key;
  bad[0] ^= uint64_t{1} << 20;
  bad[0] ^= uint64_t{1} << 28;
  EXPECT_EQ(node.MatchInfix(bad), -1);
}

TEST(NodeWhitebox, PostfixDivergenceFindsHighestBit) {
  PhTreeConfig cfg;
  Node node(2, 0, 33);
  PhKey key{0x1ABCDEF55ULL & LowMask(33), 0x012345678ULL & LowMask(33)};
  node.InsertPostfix(HcAddressAt(key, 33), key, 7, cfg);
  const uint64_t ord = node.FindOrdinal(HcAddressAt(key, 33));
  ASSERT_NE(ord, Node::kNoOrdinal);
  EXPECT_EQ(node.PostfixDivergence(ord, key), -1);
  PhKey other = key;
  other[1] ^= uint64_t{1} << 30;
  other[0] ^= uint64_t{1} << 5;
  EXPECT_EQ(node.PostfixDivergence(ord, other), 30);
  PhKey read{0, 0};
  node.ReadPostfixInto(ord, read);
  EXPECT_EQ(read[0], key[0] & LowMask(33));
  EXPECT_EQ(read[1], key[1] & LowMask(33));
}

}  // namespace
}  // namespace phtree
