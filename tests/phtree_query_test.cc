// Window-query correctness: the iterator must return exactly the brute-force
// result set on random data, across dimensionalities, distributions,
// representations, and window shapes (paper Sect. 3.5).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/datasets.h"
#include "phtree/phtree.h"
#include "phtree/phtree_d.h"
#include "phtree/query.h"

namespace phtree {
namespace {

struct QueryParam {
  uint32_t dim;
  uint32_t key_bits;
  NodeRepr repr;
};

std::string ParamName(const testing::TestParamInfo<QueryParam>& info) {
  const char* repr = info.param.repr == NodeRepr::kAdaptive ? "Adaptive"
                     : info.param.repr == NodeRepr::kLhcOnly ? "LhcOnly"
                                                             : "HcOnly";
  return "dim" + std::to_string(info.param.dim) + "bits" +
         std::to_string(info.param.key_bits) + repr;
}

class WindowQueryTest : public testing::TestWithParam<QueryParam> {};

TEST_P(WindowQueryTest, MatchesBruteForce) {
  const QueryParam p = GetParam();
  PhTreeConfig cfg;
  cfg.repr = p.repr;
  PhTree tree(p.dim, cfg);
  Rng rng(0xBEEF ^ p.dim ^ (p.key_bits << 6));

  std::vector<PhKey> keys;
  const size_t n = 800;
  for (size_t i = 0; i < n; ++i) {
    PhKey key(p.dim);
    for (auto& v : key) {
      v = rng.NextU64() & LowMask(p.key_bits);
    }
    if (tree.Insert(key, i)) {
      keys.push_back(key);
    }
  }

  for (int q = 0; q < 60; ++q) {
    PhKey lo(p.dim), hi(p.dim);
    for (uint32_t d = 0; d < p.dim; ++d) {
      uint64_t a = rng.NextU64() & LowMask(p.key_bits);
      uint64_t b = rng.NextU64() & LowMask(p.key_bits);
      if (a > b) {
        std::swap(a, b);
      }
      lo[d] = a;
      hi[d] = b;
    }
    std::set<PhKey> expected;
    for (const auto& key : keys) {
      bool in = true;
      for (uint32_t d = 0; d < p.dim; ++d) {
        in = in && key[d] >= lo[d] && key[d] <= hi[d];
      }
      if (in) {
        expected.insert(key);
      }
    }
    std::set<PhKey> got;
    for (PhTreeWindowIterator it(tree, lo, hi); it.Valid(); it.Next()) {
      ASSERT_TRUE(got.insert(it.key()).second) << "duplicate result";
    }
    ASSERT_EQ(got, expected) << "query " << q;
    ASSERT_EQ(tree.CountWindow(lo, hi), expected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowQueryTest,
    testing::Values(QueryParam{1, 64, NodeRepr::kAdaptive},
                    QueryParam{2, 64, NodeRepr::kAdaptive},
                    QueryParam{3, 64, NodeRepr::kAdaptive},
                    QueryParam{3, 10, NodeRepr::kAdaptive},
                    QueryParam{2, 4, NodeRepr::kAdaptive},
                    QueryParam{8, 3, NodeRepr::kAdaptive},
                    QueryParam{16, 2, NodeRepr::kAdaptive},
                    QueryParam{40, 1, NodeRepr::kAdaptive},
                    QueryParam{2, 8, NodeRepr::kLhcOnly},
                    QueryParam{2, 8, NodeRepr::kHcOnly},
                    QueryParam{8, 4, NodeRepr::kLhcOnly},
                    QueryParam{8, 4, NodeRepr::kHcOnly}),
    ParamName);

TEST(WindowQuery, EmptyTreeYieldsNothing) {
  PhTree tree(2);
  EXPECT_EQ(tree.CountWindow(PhKey{0, 0}, PhKey{~0ULL, ~0ULL}), 0u);
}

TEST(WindowQuery, InvertedWindowYieldsNothing) {
  PhTree tree(2);
  tree.Insert(PhKey{5, 5}, 1);
  EXPECT_EQ(tree.CountWindow(PhKey{10, 0}, PhKey{0, 10}), 0u);
}

TEST(WindowQuery, PointWindowActsAsPointQuery) {
  PhTree tree(3);
  tree.Insert(PhKey{1, 2, 3}, 7);
  tree.Insert(PhKey{1, 2, 4}, 8);
  const auto hits = tree.QueryWindow(PhKey{1, 2, 3}, PhKey{1, 2, 3});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].second, 7u);
}

TEST(WindowQuery, FullSpaceWindowReturnsEverything) {
  PhTree tree(2);
  Rng rng(5);
  size_t n = 0;
  for (int i = 0; i < 500; ++i) {
    n += tree.Insert(PhKey{rng.NextU64(), rng.NextU64()}, i) ? 1 : 0;
  }
  EXPECT_EQ(tree.CountWindow(PhKey{0, 0}, PhKey{~0ULL, ~0ULL}), n);
}

TEST(WindowQuery, BoundariesAreInclusive) {
  PhTree tree(1);
  tree.Insert(PhKey{10}, 1);
  tree.Insert(PhKey{20}, 2);
  EXPECT_EQ(tree.CountWindow(PhKey{10}, PhKey{20}), 2u);
  EXPECT_EQ(tree.CountWindow(PhKey{11}, PhKey{19}), 0u);
  EXPECT_EQ(tree.CountWindow(PhKey{10}, PhKey{10}), 1u);
  EXPECT_EQ(tree.CountWindow(PhKey{21}, PhKey{~0ULL}), 0u);
}

TEST(WindowQuery, ResultsComeInZOrder) {
  PhTree tree(2);
  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    tree.Insert(PhKey{rng.NextU64() & 0xFFFF, rng.NextU64() & 0xFFFF}, i);
  }
  std::vector<PhKey> z_all;
  tree.ForEach([&](const PhKey& k, uint64_t) { z_all.push_back(k); });
  std::vector<PhKey> z_query;
  for (PhTreeWindowIterator it(tree, PhKey{0, 0}, PhKey{~0ULL, ~0ULL});
       it.Valid(); it.Next()) {
    z_query.push_back(it.key());
  }
  EXPECT_EQ(z_query, z_all);  // same traversal order: ascending z-order
}

// The paper's CLUSTER range queries (Sect. 4.3.3) as an integration test:
// slab windows across a clustered double dataset.
TEST(WindowQuery, ClusterSlabQueriesOnDoubles) {
  const Dataset ds = GenerateCluster(5000, 3, 0.5, 7);
  PhTreeD tree(3);
  for (size_t i = 0; i < ds.n(); ++i) {
    const auto pt = ds.point(i);
    tree.InsertOrAssign(pt, i);
  }
  Rng rng(9);
  for (int q = 0; q < 20; ++q) {
    const double x0 = rng.NextDouble(0.0, 0.1);
    const double x1 = x0 + 0.0001;
    const PhKeyD lo{x0, 0.0, 0.0};
    const PhKeyD hi{x1, 1.0, 1.0};
    size_t expected = 0;
    for (size_t i = 0; i < ds.n(); ++i) {
      const auto pt = ds.point(i);
      if (pt[0] >= x0 && pt[0] <= x1) {
        ++expected;
      }
    }
    // Duplicated coordinates collapse: count distinct matching keys.
    std::set<std::pair<double, double>> unique_x;
    (void)unique_x;
    const size_t got = tree.CountWindow(lo, hi);
    // InsertOrAssign deduplicates identical points, so got <= expected.
    EXPECT_LE(got, expected);
    if (tree.size() == ds.n()) {
      EXPECT_EQ(got, expected);
    }
  }
}

}  // namespace
}  // namespace phtree
