// Tests for the key-only set mode (paper Sect. 3.1 storage model) and the
// serialisation module.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "datasets/datasets.h"
#include "phtree/phtree_d.h"
#include "phtree/phtree_set.h"
#include "phtree/serialize.h"
#include "phtree/validate.h"
#include "testdata/golden_v2_streams.h"

namespace phtree {
namespace {

TEST(PhTreeSet, BasicSetSemantics) {
  PhTreeSet set(2);
  EXPECT_TRUE(set.Insert(PhKey{1, 2}));
  EXPECT_FALSE(set.Insert(PhKey{1, 2}));
  EXPECT_TRUE(set.Contains(PhKey{1, 2}));
  EXPECT_FALSE(set.Contains(PhKey{2, 1}));
  EXPECT_EQ(set.CountWindow(PhKey{0, 0}, PhKey{9, 9}), 1u);
  EXPECT_TRUE(set.Erase(PhKey{1, 2}));
  EXPECT_EQ(set.size(), 0u);
}

TEST(PhTreeSet, SavesSpaceVsValueTree) {
  // The whole point of set mode: strictly fewer bytes per entry, same shape
  // of all other statistics.
  const Dataset ds = GenerateCube(50000, 3, 42);
  PhTreeD map_tree(3);
  PhTreeConfig set_cfg;
  set_cfg.store_values = false;
  PhTreeD set_tree(3, set_cfg);
  for (size_t i = 0; i < ds.n(); ++i) {
    map_tree.Insert(ds.point(i), i);
    set_tree.Insert(ds.point(i), 0);
  }
  const auto ms = map_tree.ComputeStats();
  const auto ss = set_tree.ComputeStats();
  EXPECT_EQ(ms.n_entries, ss.n_entries);
  EXPECT_EQ(ms.n_nodes, ss.n_nodes);
  EXPECT_EQ(ms.max_depth, ss.max_depth);
  // Close to one 8-byte payload word per entry cheaper. The gap is a bit
  // under 8: the word-pool's power-of-two size classes absorb part of the
  // per-node difference, and the BHC packed leaf already strips empty
  // payload slots from the value tree.
  EXPECT_LT(ss.BytesPerEntry() + 6.5, ms.BytesPerEntry());
  EXPECT_EQ(ValidatePhTree(set_tree.tree()), "");
}

TEST(PhTreeSet, WindowQueriesMatchValueTree) {
  const Dataset ds = GenerateCluster(20000, 3, 0.5, 7);
  PhTreeD map_tree(3);
  PhTreeConfig set_cfg;
  set_cfg.store_values = false;
  PhTreeD set_tree(3, set_cfg);
  for (size_t i = 0; i < ds.n(); ++i) {
    map_tree.InsertOrAssign(ds.point(i), i);
    set_tree.InsertOrAssign(ds.point(i), 0);
  }
  Rng rng(8);
  for (int q = 0; q < 20; ++q) {
    const double x = rng.NextDouble(0.0, 0.9);
    const PhKeyD lo{x, 0.0, 0.0};
    const PhKeyD hi{x + 0.05, 1.0, 1.0};
    ASSERT_EQ(map_tree.CountWindow(lo, hi), set_tree.CountWindow(lo, hi));
  }
}

TEST(Serialize, EmptyTreeRoundTrips) {
  PhTree tree(4);
  const auto bytes = SerializePhTree(tree);
  const auto back = DeserializePhTree(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 0u);
  EXPECT_EQ(back->dim(), 4u);
}

TEST(Serialize, RoundTripPreservesEntriesAndShape) {
  Rng rng(9);
  PhTree tree(3);
  for (int i = 0; i < 5000; ++i) {
    tree.InsertOrAssign(PhKey{rng.NextU64() & 0xFFFFFF, rng.NextU64(),
                              rng.NextU64() & 0xFF},
                        i);
  }
  const auto bytes = SerializePhTree(tree);
  const auto back = DeserializePhTree(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), tree.size());
  const auto a = tree.ComputeStats();
  const auto b = back->ComputeStats();
  EXPECT_EQ(a.n_nodes, b.n_nodes);
  EXPECT_EQ(a.memory_bytes, b.memory_bytes);
  // Contents identical.
  tree.ForEach([&](const PhKey& k, uint64_t v) {
    const auto found = back->Find(k);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, v);
  });
  EXPECT_EQ(ValidatePhTree(*back), "");
}

TEST(Serialize, GoldenPreRefactorV2StreamsLoadBitIdentically) {
  // Compatibility anchor for node-layout refactors: these two streams were
  // captured byte-for-byte from the pre-BHC build (see
  // testdata/golden_v2_streams.h). The v2 format is entry-wise, so a layout
  // change inside Node must neither reject the old bytes nor change what a
  // re-save of the loaded tree produces.
  const std::vector<uint8_t> golden_value(
      testdata::kGoldenV2Value,
      testdata::kGoldenV2Value + sizeof(testdata::kGoldenV2Value));
  const std::vector<uint8_t> golden_set(
      testdata::kGoldenV2Set,
      testdata::kGoldenV2Set + sizeof(testdata::kGoldenV2Set));

  const auto value_tree = DeserializePhTree(golden_value);
  ASSERT_TRUE(value_tree.has_value());
  EXPECT_EQ(value_tree->dim(), 3u);
  EXPECT_EQ(ValidatePhTree(*value_tree), "");
  // The stream was produced by exactly this insertion sequence; the loaded
  // tree must hold exactly these entries with these payloads.
  {
    Rng rng(77);
    PhTree expect(3);
    for (int i = 0; i < 200; ++i) {
      expect.InsertOrAssign(
          PhKey{rng.NextU64() & 0xFFFFF, rng.NextU64(), rng.NextU64() & 0xFF},
          static_cast<uint64_t>(i));
    }
    EXPECT_EQ(value_tree->size(), expect.size());
    expect.ForEach([&](const PhKey& k, uint64_t v) {
      const auto found = value_tree->Find(k);
      ASSERT_TRUE(found.has_value());
      EXPECT_EQ(*found, v);
    });
  }
  EXPECT_EQ(SerializePhTree(*value_tree), golden_value);

  const auto set_tree = DeserializePhTree(golden_set);
  ASSERT_TRUE(set_tree.has_value());
  EXPECT_EQ(set_tree->dim(), 2u);
  EXPECT_FALSE(set_tree->config().store_values);
  EXPECT_EQ(ValidatePhTree(*set_tree), "");
  {
    Rng rng(78);
    PhTreeConfig cfg;
    cfg.store_values = false;
    PhTree expect(2, cfg);
    for (int i = 0; i < 150; ++i) {
      expect.InsertOrAssign(PhKey{rng.NextU64() & 0xFFFFFF, rng.NextU64()}, 0);
    }
    EXPECT_EQ(set_tree->size(), expect.size());
    expect.ForEach([&](const PhKey& k, uint64_t) {
      EXPECT_TRUE(set_tree->Contains(k));
    });
  }
  EXPECT_EQ(SerializePhTree(*set_tree), golden_set);
}

TEST(Serialize, ZOrderDeltaCompressionBeatsRawDump) {
  // Clustered data yields long shared prefixes -> small deltas.
  const Dataset ds = GenerateCluster(20000, 3, 0.4, 11);
  PhTreeD tree(3);
  for (size_t i = 0; i < ds.n(); ++i) {
    tree.InsertOrAssign(ds.point(i), 0);
  }
  const auto bytes = SerializePhTree(tree.tree());
  const size_t raw = tree.size() * (3 * 8 + 8);  // keys + values
  EXPECT_LT(bytes.size(), raw);
}

TEST(Serialize, RejectsCorruptStreamsWithTypedErrors) {
  PhTree tree(2);
  tree.Insert(PhKey{1, 2}, 3);
  auto bytes = SerializePhTree(tree);
  // Truncation.
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::vector<uint8_t> trunc(bytes.begin(),
                               bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DeserializePhTree(trunc).has_value()) << cut;
    const auto result = DeserializePhTreeOr(trunc);
    ASSERT_FALSE(result.has_value()) << cut;
    EXPECT_EQ(result.error().code(), StatusCode::kTruncated)
        << cut << ": " << result.error().ToString();
  }
  // Bad magic.
  auto bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(DeserializePhTree(bad).has_value());
  EXPECT_EQ(DeserializePhTreeOr(bad).error().code(), StatusCode::kBadMagic);
  // Unknown version: known "PHT" prefix, unreadable version byte.
  auto bad_version = bytes;
  bad_version[3] = '9';
  EXPECT_EQ(DeserializePhTreeOr(bad_version).error().code(),
            StatusCode::kUnsupportedVersion);
  // Trailing garbage.
  auto long_stream = bytes;
  long_stream.push_back(0);
  EXPECT_FALSE(DeserializePhTree(long_stream).has_value());
  EXPECT_EQ(DeserializePhTreeOr(long_stream).error().code(),
            StatusCode::kTrailerCorrupt);
  // Corrupted header field (the header-length byte) is caught by the
  // header checks even before CRC verification would.
  auto bad_dim = bytes;
  bad_dim[4] = 200;
  EXPECT_FALSE(DeserializePhTree(bad_dim).has_value());
  EXPECT_EQ(DeserializePhTreeOr(bad_dim).error().code(),
            StatusCode::kHeaderCorrupt);
}

TEST(Serialize, RoundTripsUnderBothArenaModes) {
  // use_arena changes allocation policy only — the serialised bytes and
  // the round-tripped structure must be identical in both modes.
  Rng rng(21);
  PhTreeConfig arena_cfg;    // use_arena = true (default)
  PhTreeConfig no_arena_cfg;
  no_arena_cfg.use_arena = false;
  PhTree with_arena(3, arena_cfg);
  PhTree without_arena(3, no_arena_cfg);
  for (int i = 0; i < 3000; ++i) {
    const PhKey key{rng.NextU64() & 0xFFFFF, rng.NextU64(),
                    rng.NextU64() & 0xFFF};
    with_arena.InsertOrAssign(key, i);
    without_arena.InsertOrAssign(key, i);
  }
  const auto bytes_arena = SerializePhTree(with_arena);
  const auto bytes_no_arena = SerializePhTree(without_arena);
  EXPECT_EQ(bytes_arena, bytes_no_arena);

  LoadOptions paranoid;
  paranoid.validate_structure = true;
  auto back = DeserializePhTreeOr(bytes_no_arena, paranoid);
  ASSERT_TRUE(back.has_value()) << back.error().ToString();
  EXPECT_EQ(back->size(), with_arena.size());
  const auto a = with_arena.ComputeStats();
  const auto b = back->ComputeStats();
  EXPECT_EQ(a.n_nodes, b.n_nodes);
  EXPECT_EQ(ValidatePhTree(*back), "");
  without_arena.ForEach([&](const PhKey& k, uint64_t v) {
    const auto found = back->Find(k);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, v);
  });
}

TEST(Serialize, LegacyV1StreamsLoadWithWarning) {
  Rng rng(22);
  PhTree tree(2);
  for (int i = 0; i < 1000; ++i) {
    tree.InsertOrAssign(PhKey{rng.NextU64(), rng.NextU64() & 0xFFFF}, i);
  }
  const auto v1 = SerializePhTreeV1(tree);
  // The v2 writer produces a different (checksummed) stream.
  EXPECT_NE(v1, SerializePhTree(tree));

  Status warning;
  LoadOptions opts;
  opts.legacy_warning = &warning;
  opts.validate_structure = true;
  auto back = DeserializePhTreeOr(v1, opts);
  ASSERT_TRUE(back.has_value()) << back.error().ToString();
  EXPECT_EQ(back->size(), tree.size());
  EXPECT_EQ(ValidatePhTree(*back), "");
  EXPECT_EQ(warning.code(), StatusCode::kLegacyUnchecksummed);
  EXPECT_NE(warning.message().find("re-save"), std::string::npos);
  tree.ForEach([&](const PhKey& k, uint64_t v) {
    const auto found = back->Find(k);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, v);
  });

  // The optional shim also still accepts v1 (silently).
  EXPECT_TRUE(DeserializePhTree(v1).has_value());

  // Strict mode rejects v1 outright.
  LoadOptions strict;
  strict.accept_legacy_v1 = false;
  const auto rejected = DeserializePhTreeOr(v1, strict);
  ASSERT_FALSE(rejected.has_value());
  EXPECT_EQ(rejected.error().code(), StatusCode::kUnsupportedVersion);
}

TEST(Serialize, LegacyV1CorruptionGetsTypedErrors) {
  PhTree tree(2);
  tree.Insert(PhKey{1, 2}, 3);
  tree.Insert(PhKey{9, 9}, 4);
  const auto v1 = SerializePhTreeV1(tree);
  // Forged entry count at byte offset 22 (the v1 header's u64 count).
  auto forged = v1;
  forged[22] = 200;
  const auto too_many = DeserializePhTreeOr(forged);
  ASSERT_FALSE(too_many.has_value());
  EXPECT_EQ(too_many.error().code(), StatusCode::kTruncated);
  forged[22] = 1;
  const auto too_few = DeserializePhTreeOr(forged);
  ASSERT_FALSE(too_few.has_value());
  EXPECT_EQ(too_few.error().code(), StatusCode::kTrailerCorrupt);
  // Truncation inside an entry.
  std::vector<uint8_t> trunc(v1.begin(), v1.end() - 3);
  const auto cut = DeserializePhTreeOr(trunc);
  ASSERT_FALSE(cut.has_value());
  EXPECT_EQ(cut.error().code(), StatusCode::kTruncated);
}

TEST(Serialize, FileRoundTrip) {
  PhTree tree(2);
  Rng rng(12);
  for (int i = 0; i < 500; ++i) {
    tree.InsertOrAssign(PhKey{rng.NextU64(), rng.NextU64()}, i);
  }
  const std::string path = "/tmp/phtree_serialize_test.bin";
  ASSERT_TRUE(SavePhTree(tree, path));
  const auto back = LoadPhTree(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), tree.size());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadPhTree("/tmp/does_not_exist_phtree.bin").has_value());
}

TEST(Serialize, PreservesConfig) {
  PhTreeConfig cfg;
  cfg.repr = NodeRepr::kLhcOnly;
  cfg.store_values = false;
  cfg.hysteresis = 0.9;
  PhTree tree(2, cfg);
  tree.Insert(PhKey{1, 1}, 0);
  const auto back = DeserializePhTree(SerializePhTree(tree));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->config().repr, NodeRepr::kLhcOnly);
  EXPECT_EQ(back->config().store_values, false);
  EXPECT_EQ(back->config().hysteresis, 0.9);
}

}  // namespace
}  // namespace phtree
