// Tests for the key-only set mode (paper Sect. 3.1 storage model) and the
// serialisation module.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "datasets/datasets.h"
#include "phtree/phtree_d.h"
#include "phtree/phtree_set.h"
#include "phtree/serialize.h"
#include "phtree/validate.h"

namespace phtree {
namespace {

TEST(PhTreeSet, BasicSetSemantics) {
  PhTreeSet set(2);
  EXPECT_TRUE(set.Insert(PhKey{1, 2}));
  EXPECT_FALSE(set.Insert(PhKey{1, 2}));
  EXPECT_TRUE(set.Contains(PhKey{1, 2}));
  EXPECT_FALSE(set.Contains(PhKey{2, 1}));
  EXPECT_EQ(set.CountWindow(PhKey{0, 0}, PhKey{9, 9}), 1u);
  EXPECT_TRUE(set.Erase(PhKey{1, 2}));
  EXPECT_EQ(set.size(), 0u);
}

TEST(PhTreeSet, SavesSpaceVsValueTree) {
  // The whole point of set mode: strictly fewer bytes per entry, same shape
  // of all other statistics.
  const Dataset ds = GenerateCube(50000, 3, 42);
  PhTreeD map_tree(3);
  PhTreeConfig set_cfg;
  set_cfg.store_values = false;
  PhTreeD set_tree(3, set_cfg);
  for (size_t i = 0; i < ds.n(); ++i) {
    map_tree.Insert(ds.point(i), i);
    set_tree.Insert(ds.point(i), 0);
  }
  const auto ms = map_tree.ComputeStats();
  const auto ss = set_tree.ComputeStats();
  EXPECT_EQ(ms.n_entries, ss.n_entries);
  EXPECT_EQ(ms.n_nodes, ss.n_nodes);
  EXPECT_EQ(ms.max_depth, ss.max_depth);
  // At least 7 bytes/entry cheaper (one payload word minus bookkeeping).
  EXPECT_LT(ss.BytesPerEntry() + 7.0, ms.BytesPerEntry());
  EXPECT_EQ(ValidatePhTree(set_tree.tree()), "");
}

TEST(PhTreeSet, WindowQueriesMatchValueTree) {
  const Dataset ds = GenerateCluster(20000, 3, 0.5, 7);
  PhTreeD map_tree(3);
  PhTreeConfig set_cfg;
  set_cfg.store_values = false;
  PhTreeD set_tree(3, set_cfg);
  for (size_t i = 0; i < ds.n(); ++i) {
    map_tree.InsertOrAssign(ds.point(i), i);
    set_tree.InsertOrAssign(ds.point(i), 0);
  }
  Rng rng(8);
  for (int q = 0; q < 20; ++q) {
    const double x = rng.NextDouble(0.0, 0.9);
    const PhKeyD lo{x, 0.0, 0.0};
    const PhKeyD hi{x + 0.05, 1.0, 1.0};
    ASSERT_EQ(map_tree.CountWindow(lo, hi), set_tree.CountWindow(lo, hi));
  }
}

TEST(Serialize, EmptyTreeRoundTrips) {
  PhTree tree(4);
  const auto bytes = SerializePhTree(tree);
  const auto back = DeserializePhTree(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 0u);
  EXPECT_EQ(back->dim(), 4u);
}

TEST(Serialize, RoundTripPreservesEntriesAndShape) {
  Rng rng(9);
  PhTree tree(3);
  for (int i = 0; i < 5000; ++i) {
    tree.InsertOrAssign(PhKey{rng.NextU64() & 0xFFFFFF, rng.NextU64(),
                              rng.NextU64() & 0xFF},
                        i);
  }
  const auto bytes = SerializePhTree(tree);
  const auto back = DeserializePhTree(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), tree.size());
  const auto a = tree.ComputeStats();
  const auto b = back->ComputeStats();
  EXPECT_EQ(a.n_nodes, b.n_nodes);
  EXPECT_EQ(a.memory_bytes, b.memory_bytes);
  // Contents identical.
  tree.ForEach([&](const PhKey& k, uint64_t v) {
    const auto found = back->Find(k);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, v);
  });
  EXPECT_EQ(ValidatePhTree(*back), "");
}

TEST(Serialize, ZOrderDeltaCompressionBeatsRawDump) {
  // Clustered data yields long shared prefixes -> small deltas.
  const Dataset ds = GenerateCluster(20000, 3, 0.4, 11);
  PhTreeD tree(3);
  for (size_t i = 0; i < ds.n(); ++i) {
    tree.InsertOrAssign(ds.point(i), 0);
  }
  const auto bytes = SerializePhTree(tree.tree());
  const size_t raw = tree.size() * (3 * 8 + 8);  // keys + values
  EXPECT_LT(bytes.size(), raw);
}

TEST(Serialize, RejectsCorruptStreams) {
  PhTree tree(2);
  tree.Insert(PhKey{1, 2}, 3);
  auto bytes = SerializePhTree(tree);
  // Truncation.
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::vector<uint8_t> trunc(bytes.begin(),
                               bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DeserializePhTree(trunc).has_value()) << cut;
  }
  // Bad magic.
  auto bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(DeserializePhTree(bad).has_value());
  // Trailing garbage.
  auto long_stream = bytes;
  long_stream.push_back(0);
  EXPECT_FALSE(DeserializePhTree(long_stream).has_value());
  // Absurd dimension.
  auto bad_dim = bytes;
  bad_dim[4] = 200;
  EXPECT_FALSE(DeserializePhTree(bad_dim).has_value());
}

TEST(Serialize, FileRoundTrip) {
  PhTree tree(2);
  Rng rng(12);
  for (int i = 0; i < 500; ++i) {
    tree.InsertOrAssign(PhKey{rng.NextU64(), rng.NextU64()}, i);
  }
  const std::string path = "/tmp/phtree_serialize_test.bin";
  ASSERT_TRUE(SavePhTree(tree, path));
  const auto back = LoadPhTree(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), tree.size());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadPhTree("/tmp/does_not_exist_phtree.bin").has_value());
}

TEST(Serialize, PreservesConfig) {
  PhTreeConfig cfg;
  cfg.repr = NodeRepr::kLhcOnly;
  cfg.store_values = false;
  cfg.hysteresis = 0.9;
  PhTree tree(2, cfg);
  tree.Insert(PhKey{1, 1}, 0);
  const auto back = DeserializePhTree(SerializePhTree(tree));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->config().repr, NodeRepr::kLhcOnly);
  EXPECT_EQ(back->config().store_values, false);
  EXPECT_EQ(back->config().hysteresis, 0.9);
}

}  // namespace
}  // namespace phtree
