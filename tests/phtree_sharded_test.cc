// Functional tests for the lock-striped sharded PH-tree: shard routing,
// region clipping, equivalence with a single PhTree on every query type,
// bulk load, persistence, and per-shard structural invariants.
#include "phtree/sharded.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "phtree/phtree_sync.h"
#include "phtree/serialize.h"
#include "phtree/validate.h"

namespace phtree {
namespace {

std::vector<PhKey> RandomKeys(size_t n, uint32_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<PhKey> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PhKey key(dim);
    for (auto& v : key) {
      v = rng.NextU64();
    }
    keys.push_back(std::move(key));
  }
  return keys;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(PhTreeSharded, ShardRoutingMatchesShardRegions) {
  for (const uint32_t dim : {1u, 2u, 3u, 5u}) {
    for (const uint32_t shards : {1u, 2u, 4u, 8u, 16u}) {
      PhTreeSharded tree(dim, shards);
      PhKey lo;
      PhKey hi;
      for (uint32_t s = 0; s < shards; ++s) {
        tree.ShardRegion(s, &lo, &hi);
        // The region's corners route back to the shard, so the region is
        // exactly the preimage of s (the routing is a prefix of z-order).
        EXPECT_EQ(tree.ShardOf(lo), s);
        EXPECT_EQ(tree.ShardOf(hi), s);
      }
      const auto keys = RandomKeys(200, dim, 7 + dim + shards);
      for (const auto& key : keys) {
        const uint32_t s = tree.ShardOf(key);
        ASSERT_LT(s, shards);
        tree.ShardRegion(s, &lo, &hi);
        for (uint32_t d = 0; d < dim; ++d) {
          EXPECT_GE(key[d], lo[d]);
          EXPECT_LE(key[d], hi[d]);
        }
      }
    }
  }
}

TEST(PhTreeSharded, ShardRegionsAreOrderedAndDisjoint) {
  PhTreeSharded tree(2, 8);
  PhKey prev_hi;
  for (uint32_t s = 0; s < 8; ++s) {
    PhKey lo;
    PhKey hi;
    tree.ShardRegion(s, &lo, &hi);
    for (uint32_t d = 0; d < 2; ++d) {
      EXPECT_LE(lo[d], hi[d]);
    }
    if (s > 0) {
      // Regions of consecutive shards are distinct boxes (routing is a
      // partition; full disjointness is implied by the preimage property
      // checked above).
      EXPECT_NE(lo, prev_hi);
    }
    prev_hi = hi;
  }
}

TEST(PhTreeSharded, BasicOperations) {
  PhTreeSharded tree(2, 4);
  EXPECT_EQ(tree.dim(), 2u);
  EXPECT_EQ(tree.num_shards(), 4u);
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Insert(PhKey{1, 2}, 3));
  EXPECT_FALSE(tree.Insert(PhKey{1, 2}, 4));  // duplicate
  EXPECT_EQ(tree.Find(PhKey{1, 2}), std::optional<uint64_t>(3));
  EXPECT_FALSE(tree.InsertOrAssign(PhKey{1, 2}, 9));  // assigned, not new
  EXPECT_EQ(tree.Find(PhKey{1, 2}), std::optional<uint64_t>(9));
  EXPECT_FALSE(tree.Contains(PhKey{2, 1}));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Erase(PhKey{1, 2}));
  EXPECT_FALSE(tree.Erase(PhKey{1, 2}));
  EXPECT_TRUE(tree.empty());
}

TEST(PhTreeSharded, MatchesPlainTreeOnEveryQueryType) {
  const uint32_t dim = 3;
  const auto keys = RandomKeys(4000, dim, 11);
  PhTree plain(dim);
  PhTreeSharded sharded(dim, 8);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(plain.Insert(keys[i], i), sharded.Insert(keys[i], i));
  }
  EXPECT_EQ(plain.size(), sharded.size());

  for (const auto& key : keys) {
    EXPECT_EQ(plain.Find(key), sharded.Find(key));
  }

  // Window queries: identical result *sequences* — the sharded fan-out
  // must preserve global z-order when concatenating per-shard results.
  Rng rng(12);
  for (int q = 0; q < 40; ++q) {
    PhKey lo(dim);
    PhKey hi(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      uint64_t a = rng.NextU64();
      uint64_t b = rng.NextU64();
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const auto expect = plain.QueryWindow(lo, hi);
    const auto got = sharded.QueryWindow(lo, hi);
    EXPECT_EQ(expect, got) << "window query " << q;
    EXPECT_EQ(plain.CountWindow(lo, hi), sharded.CountWindow(lo, hi));

    // Visitor form agrees with the vector form.
    std::vector<std::pair<PhKey, uint64_t>> visited;
    sharded.QueryWindow(lo, hi, [&](const PhKey& k, uint64_t v) {
      visited.emplace_back(k, v);
    });
    EXPECT_EQ(expect, visited);
  }

  // ForEach: same global z-order enumeration.
  std::vector<std::pair<PhKey, uint64_t>> plain_all;
  std::vector<std::pair<PhKey, uint64_t>> sharded_all;
  plain.ForEach([&](const PhKey& k, uint64_t v) { plain_all.emplace_back(k, v); });
  sharded.ForEach(
      [&](const PhKey& k, uint64_t v) { sharded_all.emplace_back(k, v); });
  EXPECT_EQ(plain_all, sharded_all);

  // kNN: same distances for the same query (keys may differ on exact
  // ties, so compare the distance sequences).
  for (int q = 0; q < 20; ++q) {
    PhKey center(dim);
    for (auto& c : center) {
      c = rng.NextU64();
    }
    for (const size_t n : {1u, 5u, 32u}) {
      const auto expect = KnnSearch(plain, center, n);
      const auto got = sharded.KnnSearch(center, n);
      ASSERT_EQ(expect.size(), got.size());
      for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_DOUBLE_EQ(expect[i].dist2, got[i].dist2)
            << "query " << q << " n " << n << " rank " << i;
      }
    }
  }

  // Aggregated stats count every entry exactly once.
  const PhTreeStats stats = sharded.ComputeStats();
  EXPECT_EQ(stats.n_entries, plain.size());
  EXPECT_EQ(stats.n_postfix_entries, plain.size());

  // Erase half and re-check equivalence plus per-shard invariants.
  for (size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_EQ(plain.Erase(keys[i]), sharded.Erase(keys[i]));
  }
  EXPECT_EQ(plain.size(), sharded.size());
  for (const auto& key : keys) {
    EXPECT_EQ(plain.Find(key), sharded.Find(key));
  }
  for (uint32_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(ValidatePhTree(sharded.UnsafeShard(s)), "");
  }
}

TEST(PhTreeSharded, ZOrderLessMatchesTreeEnumerationOrder) {
  const uint32_t dim = 3;
  const auto keys = RandomKeys(500, dim, 21);
  PhTree plain(dim);
  for (size_t i = 0; i < keys.size(); ++i) {
    plain.Insert(keys[i], i);
  }
  std::vector<PhKey> enumerated;
  plain.ForEach([&](const PhKey& k, uint64_t) { enumerated.push_back(k); });
  // Sorting by ZOrderLess reproduces the tree's own enumeration order.
  std::vector<PhKey> sorted = keys;
  std::sort(sorted.begin(), sorted.end(),
            [](const PhKey& a, const PhKey& b) { return ZOrderLess(a, b); });
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(enumerated, sorted);
  // Strict weak ordering basics.
  EXPECT_FALSE(ZOrderLess(keys[0], keys[0]));
  EXPECT_NE(ZOrderLess(keys[0], keys[1]), ZOrderLess(keys[1], keys[0]));
}

TEST(PhTreeSharded, HashRoutingMatchesPlainTreeAndBalancesSkewedKeys) {
  const uint32_t dim = 3;
  // Keys confined to a narrow band: the top 16 bits of every word are
  // identical, mimicking SortableDoubleBits-encoded uniform doubles (shared
  // sign + exponent). Z-prefix routing sends ALL of them to one shard;
  // hash routing must spread them evenly.
  Rng rng(31);
  auto band_word = [&rng]() {
    return 0x3ff0000000000000ULL | (rng.NextU64() >> 16);
  };
  std::vector<PhKey> keys;
  keys.reserve(4000);
  for (size_t i = 0; i < 4000; ++i) {
    PhKey key(dim);
    for (auto& v : key) {
      v = band_word();
    }
    keys.push_back(std::move(key));
  }
  PhTree plain(dim);
  PhTreeSharded zp(dim, 8);  // control: demonstrates the skew
  PhTreeSharded hashed(dim, 8, ShardRouting::kHash);
  EXPECT_EQ(zp.routing(), ShardRouting::kZPrefix);
  EXPECT_EQ(hashed.routing(), ShardRouting::kHash);
  for (size_t i = 0; i < keys.size(); ++i) {
    plain.Insert(keys[i], i);
    zp.Insert(keys[i], i);
    hashed.Insert(keys[i], i);
  }
  uint32_t zp_nonempty = 0;
  for (uint32_t s = 0; s < 8; ++s) {
    zp_nonempty += zp.UnsafeShard(s).size() > 0 ? 1 : 0;
  }
  EXPECT_EQ(zp_nonempty, 1u);  // the skew hash routing exists to fix
  for (uint32_t s = 0; s < 8; ++s) {
    // Every hash shard within [mean/2, 2*mean].
    EXPECT_GT(hashed.UnsafeShard(s).size(), plain.size() / 16);
    EXPECT_LT(hashed.UnsafeShard(s).size(), plain.size() / 4);
  }

  for (const auto& key : keys) {
    EXPECT_EQ(plain.Find(key), hashed.Find(key));
  }

  // Vector window queries restore global z-order by sorting the fan-out.
  for (int q = 0; q < 20; ++q) {
    PhKey lo(dim);
    PhKey hi(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      const uint64_t a = band_word();
      const uint64_t b = band_word();
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    const auto expect = plain.QueryWindow(lo, hi);
    EXPECT_EQ(expect, hashed.QueryWindow(lo, hi)) << "window query " << q;
    EXPECT_EQ(plain.CountWindow(lo, hi), hashed.CountWindow(lo, hi));
    // The visitor form is only per-shard z-ordered under kHash: compare
    // after re-establishing the global order.
    std::vector<std::pair<PhKey, uint64_t>> visited;
    hashed.QueryWindow(lo, hi, [&](const PhKey& k, uint64_t v) {
      visited.emplace_back(k, v);
    });
    std::sort(visited.begin(), visited.end(), [](const auto& a, const auto& b) {
      return ZOrderLess(a.first, b.first);
    });
    EXPECT_EQ(expect, visited);
  }

  // kNN must search every shard (no spatial pruning) and still return the
  // globally nearest distances.
  for (int q = 0; q < 10; ++q) {
    PhKey center(dim);
    for (auto& c : center) {
      c = band_word();
    }
    const auto expect = KnnSearch(plain, center, 10);
    const auto got = hashed.KnnSearch(center, 10);
    ASSERT_EQ(expect.size(), got.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_DOUBLE_EQ(expect[i].dist2, got[i].dist2)
          << "query " << q << " rank " << i;
    }
  }

  // Snapshots are canonical regardless of routing: a hash-routed tree
  // round-trips through Save/Load (which re-partitions with ITS routing).
  const std::string path = TempPath("sharded_hash.phtree");
  ASSERT_TRUE(hashed.Save(path).ok());
  PhTreeSharded reload(dim, 4, ShardRouting::kHash);
  ASSERT_TRUE(reload.Load(path).ok());
  EXPECT_EQ(reload.size(), plain.size());
  std::vector<std::pair<PhKey, uint64_t>> plain_all;
  std::vector<std::pair<PhKey, uint64_t>> reload_all;
  plain.ForEach(
      [&](const PhKey& k, uint64_t v) { plain_all.emplace_back(k, v); });
  reload.ForEach(
      [&](const PhKey& k, uint64_t v) { reload_all.emplace_back(k, v); });
  std::sort(reload_all.begin(), reload_all.end(),
            [](const auto& a, const auto& b) {
              return ZOrderLess(a.first, b.first);
            });
  EXPECT_EQ(plain_all, reload_all);
  for (uint32_t s = 0; s < reload.num_shards(); ++s) {
    EXPECT_EQ(ValidatePhTree(reload.UnsafeShard(s)), "");
  }
  std::remove(path.c_str());
}

TEST(PhTreeSharded, KnnExceedingTreeSizeReturnsEverything) {
  PhTreeSharded tree(2, 8);
  const auto keys = RandomKeys(50, 2, 99);
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], i);
  }
  const auto all = tree.KnnSearch(PhKey{0, 0}, 1000);
  EXPECT_EQ(all.size(), tree.size());
  EXPECT_TRUE(std::is_sorted(
      all.begin(), all.end(),
      [](const KnnResult& a, const KnnResult& b) { return a.dist2 < b.dist2; }));
}

TEST(PhTreeSharded, BulkLoadMatchesSequentialInsert) {
  const uint32_t dim = 2;
  const auto keys = RandomKeys(5000, dim, 21);
  std::vector<PhEntry> entries;
  entries.reserve(keys.size() + 100);
  for (size_t i = 0; i < keys.size(); ++i) {
    entries.push_back(PhEntry{keys[i], i});
  }
  // Duplicates: first occurrence wins, later ones dropped (Insert
  // semantics) — also across the bulk-load partition.
  for (size_t i = 0; i < 100; ++i) {
    entries.push_back(PhEntry{keys[i], 999999 + i});
  }

  PhTreeSharded bulk(dim, 8);
  const size_t inserted = bulk.BulkLoad(entries);
  EXPECT_EQ(inserted, keys.size());
  EXPECT_EQ(bulk.size(), keys.size());

  PhTreeSharded seq(dim, 8);
  for (size_t i = 0; i < keys.size(); ++i) {
    seq.Insert(keys[i], i);
  }
  for (const auto& key : keys) {
    EXPECT_EQ(bulk.Find(key), seq.Find(key));
  }
  // Structure is a pure function of the entries, so the shards are
  // byte-identical in stats regardless of how they were built.
  const PhTreeStats a = bulk.ComputeStats();
  const PhTreeStats b = seq.ComputeStats();
  EXPECT_EQ(a.n_nodes, b.n_nodes);
  EXPECT_EQ(a.memory_bytes, b.memory_bytes);
  for (uint32_t s = 0; s < bulk.num_shards(); ++s) {
    EXPECT_EQ(ValidatePhTree(bulk.UnsafeShard(s)), "");
  }
}

TEST(PhTreeSharded, ClearEmptiesEveryShard) {
  PhTreeSharded tree(2, 4);
  const auto keys = RandomKeys(500, 2, 31);
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], i);
  }
  EXPECT_GT(tree.size(), 0u);
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  for (const auto& key : keys) {
    EXPECT_FALSE(tree.Contains(key));
  }
  // Still usable after Clear.
  EXPECT_TRUE(tree.Insert(keys[0], 1));
}

TEST(PhTreeSharded, SingleShardDegeneratesToPlainTree) {
  const auto keys = RandomKeys(1000, 2, 41);
  PhTree plain(2);
  PhTreeSharded sharded(2, 1);
  for (size_t i = 0; i < keys.size(); ++i) {
    plain.Insert(keys[i], i);
    sharded.Insert(keys[i], i);
  }
  const PhTreeStats a = plain.ComputeStats();
  const PhTreeStats b = sharded.ComputeStats();
  EXPECT_EQ(a.n_nodes, b.n_nodes);
  EXPECT_EQ(a.memory_bytes, b.memory_bytes);
  EXPECT_EQ(a.max_depth, b.max_depth);
}

TEST(PhTreeSharded, SaveLoadRoundTripAcrossShardCounts) {
  const uint32_t dim = 2;
  const auto keys = RandomKeys(2000, dim, 51);
  PhTreeSharded original(dim, 8);
  for (size_t i = 0; i < keys.size(); ++i) {
    original.Insert(keys[i], i);
  }
  const std::string path = TempPath("sharded_snapshot.pht");
  ASSERT_TRUE(original.Save(path).ok());

  // Reload into a different shard count: content must be identical.
  PhTreeSharded reloaded(dim, 2);
  ASSERT_TRUE(reloaded.Load(path).ok());
  EXPECT_EQ(reloaded.size(), original.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(reloaded.Find(keys[i]), std::optional<uint64_t>(i));
  }
  for (uint32_t s = 0; s < reloaded.num_shards(); ++s) {
    EXPECT_EQ(ValidatePhTree(reloaded.UnsafeShard(s)), "");
  }

  // The sharded snapshot is a plain v2 stream: a single tree loads it too,
  // byte-identically to a tree built from the same entries.
  auto plain = LoadPhTreeOr(path);
  ASSERT_TRUE(plain.has_value()) << plain.error().ToString();
  EXPECT_EQ(plain->size(), original.size());
  PhTree rebuilt(dim);
  for (size_t i = 0; i < keys.size(); ++i) {
    rebuilt.Insert(keys[i], i);
  }
  EXPECT_EQ(SerializePhTree(*plain), SerializePhTree(rebuilt));

  // And the other direction: a plain SavePhTreeOr snapshot loads sharded.
  const std::string plain_path = TempPath("plain_snapshot.pht");
  ASSERT_TRUE(SavePhTreeOr(rebuilt, plain_path).ok());
  PhTreeSharded from_plain(dim, 16);
  ASSERT_TRUE(from_plain.Load(plain_path).ok());
  EXPECT_EQ(from_plain.size(), rebuilt.size());

  std::remove(path.c_str());
  std::remove(plain_path.c_str());
}

TEST(PhTreeSharded, LoadRejectsDimensionMismatch) {
  PhTree tree3(3);
  tree3.Insert(PhKey{1, 2, 3}, 4);
  const std::string path = TempPath("dim3_snapshot.pht");
  ASSERT_TRUE(SavePhTreeOr(tree3, path).ok());
  PhTreeSharded tree2(2, 4);
  tree2.Insert(PhKey{7, 7}, 1);
  const Status st = tree2.Load(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Failed load leaves the tree untouched.
  EXPECT_EQ(tree2.size(), 1u);
  EXPECT_TRUE(tree2.Contains(PhKey{7, 7}));
  std::remove(path.c_str());
}

TEST(PhTreeSharded, LoadReportsIoErrorForMissingFile) {
  PhTreeSharded tree(2, 4);
  const Status st = tree.Load(TempPath("does_not_exist.pht"));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(PhTreeSync, SaveLoadRoundTrip) {
  PhTreeSync tree(2);
  const auto keys = RandomKeys(1000, 2, 61);
  for (size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], i);
  }
  const std::string path = TempPath("sync_snapshot.pht");
  ASSERT_TRUE(tree.Save(path).ok());

  PhTreeSync reloaded(2);
  ASSERT_TRUE(reloaded.Load(path).ok());
  EXPECT_EQ(reloaded.size(), tree.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(reloaded.Find(keys[i]), std::optional<uint64_t>(i));
  }

  PhTreeSync wrong_dim(3);
  const Status st = wrong_dim.Load(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PhTreeSync, VisitorWindowQueryMatchesVector) {
  PhTreeSync tree(2);
  for (uint64_t i = 0; i < 100; ++i) {
    tree.Insert(PhKey{i, i * 2}, i);
  }
  const PhKey lo{10, 0};
  const PhKey hi{50, ~uint64_t{0}};
  const auto expect = tree.QueryWindow(lo, hi);
  std::vector<std::pair<PhKey, uint64_t>> visited;
  tree.QueryWindow(lo, hi, [&](const PhKey& k, uint64_t v) {
    visited.emplace_back(k, v);
  });
  EXPECT_EQ(expect, visited);
}

}  // namespace
}  // namespace phtree
