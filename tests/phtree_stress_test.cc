// Stress and property tests on the paper's datasets at moderate scale:
// structural invariants after heavy churn, insertion-order independence at
// scale, and the complexity claims of Sect. 3.5/3.6 as testable bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "datasets/datasets.h"
#include "phtree/phtree.h"
#include "phtree/phtree_d.h"
#include "phtree/query.h"
#include "phtree/validate.h"

namespace phtree {
namespace {

TEST(Stress, ChurnOnClusterDatasetKeepsInvariants) {
  const Dataset ds = GenerateCluster(30000, 3, 0.5, 21);
  PhTreeD tree(3);
  std::vector<size_t> inserted;
  for (size_t i = 0; i < ds.n(); ++i) {
    if (tree.Insert(ds.point(i), i)) {
      inserted.push_back(i);
    }
  }
  ASSERT_EQ(ValidatePhTree(tree.tree()), "");
  Rng rng(5);
  // Five rounds of erase-half / reinsert-half.
  for (int round = 0; round < 5; ++round) {
    for (size_t j = 0; j < inserted.size(); j += 2) {
      ASSERT_TRUE(tree.Erase(ds.point(inserted[j])));
    }
    ASSERT_EQ(ValidatePhTree(tree.tree()), "") << "round " << round;
    for (size_t j = 0; j < inserted.size(); j += 2) {
      ASSERT_TRUE(tree.Insert(ds.point(inserted[j]), j));
    }
    ASSERT_EQ(ValidatePhTree(tree.tree()), "") << "round " << round;
    ASSERT_EQ(tree.size(), inserted.size());
  }
}

TEST(Stress, InsertionOrderIndependenceAtScale) {
  const Dataset ds = GenerateTigerLike(20000, 22);
  PhTreeD forward(2);
  PhTreeD backward(2);
  PhTreeD shuffled(2);
  std::vector<size_t> order(ds.n());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(23);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  for (size_t i = 0; i < ds.n(); ++i) {
    forward.Insert(ds.point(i), 0);
    backward.Insert(ds.point(ds.n() - 1 - i), 0);
    shuffled.Insert(ds.point(order[i]), 0);
  }
  const auto fs = forward.ComputeStats();
  const auto bs = backward.ComputeStats();
  const auto ss = shuffled.ComputeStats();
  EXPECT_EQ(fs.n_nodes, bs.n_nodes);
  EXPECT_EQ(fs.n_nodes, ss.n_nodes);
  EXPECT_EQ(fs.n_hc_nodes, bs.n_hc_nodes);
  EXPECT_EQ(fs.memory_bytes, bs.memory_bytes);
  EXPECT_EQ(fs.memory_bytes, ss.memory_bytes);
  EXPECT_EQ(fs.max_depth, ss.max_depth);
}

TEST(Stress, EraseInsertRoundTripRestoresExactShape) {
  // Deleting and reinserting the same keys must restore the identical
  // structure (shape is a pure function of the content).
  const Dataset ds = GenerateCube(5000, 3, 24);
  PhTreeD tree(3);
  for (size_t i = 0; i < ds.n(); ++i) {
    tree.Insert(ds.point(i), i);
  }
  const auto before = tree.ComputeStats();
  for (size_t i = 0; i < ds.n(); i += 3) {
    ASSERT_TRUE(tree.Erase(ds.point(i)));
  }
  for (size_t i = 0; i < ds.n(); i += 3) {
    ASSERT_TRUE(tree.Insert(ds.point(i), i));
  }
  const auto after = tree.ComputeStats();
  EXPECT_EQ(before.n_nodes, after.n_nodes);
  EXPECT_EQ(before.n_hc_nodes, after.n_hc_nodes);
  EXPECT_EQ(before.memory_bytes, after.memory_bytes);
  EXPECT_EQ(before.max_depth, after.max_depth);
}

TEST(Stress, DepthBoundHoldsOnAllPaperDatasets) {
  for (uint32_t k : {2u, 3u, 10u}) {
    for (double offset : {0.4, 0.5}) {
      const Dataset ds = GenerateCluster(20000, k, offset, 25);
      PhTreeD tree(k);
      for (size_t i = 0; i < ds.n(); ++i) {
        tree.InsertOrAssign(ds.point(i), i);
      }
      EXPECT_LE(tree.ComputeStats().max_depth, kBitWidth);
    }
  }
}

TEST(Stress, WindowQueryUnderChurnStaysConsistent) {
  const Dataset ds = GenerateCube(10000, 2, 26);
  PhTreeD tree(2);
  std::vector<bool> present(ds.n(), false);
  Rng rng(27);
  for (int step = 0; step < 20; ++step) {
    // Toggle 1000 random points.
    for (int t = 0; t < 1000; ++t) {
      const size_t i = rng.NextBounded(ds.n());
      if (present[i]) {
        present[i] = !tree.Erase(ds.point(i)) ? present[i] : false;
      } else {
        present[i] = tree.Insert(ds.point(i), i);
      }
    }
    // One random window, checked against the flags.
    const double x = rng.NextDouble(0.0, 0.8);
    const double y = rng.NextDouble(0.0, 0.8);
    const PhKeyD lo{x, y};
    const PhKeyD hi{x + 0.2, y + 0.2};
    size_t expected = 0;
    for (size_t i = 0; i < ds.n(); ++i) {
      if (!present[i]) {
        continue;
      }
      const auto p = ds.point(i);
      if (p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1]) {
        ++expected;
      }
    }
    ASSERT_EQ(tree.CountWindow(lo, hi), expected) << "step " << step;
  }
}

TEST(Stress, SingleRestrictedDimensionWorstCase) {
  // Paper Sect. 3.5 worst case: boolean-like data queried on one dimension
  // only. The query must still be correct (it degenerates to a near full
  // scan, which is the documented behaviour).
  PhTree tree(8);
  Rng rng(28);
  size_t n_with_one = 0;
  for (int i = 0; i < 4000; ++i) {
    PhKey key(8);
    for (auto& v : key) {
      v = rng.NextBounded(2);
    }
    if (tree.Insert(key, i)) {
      n_with_one += key[3] == 1 ? 1 : 0;
    }
  }
  PhKey lo(8, 0), hi(8, 1);
  lo[3] = 1;  // restrict only dimension 3
  EXPECT_EQ(tree.CountWindow(lo, hi), n_with_one);
}

}  // namespace
}  // namespace phtree
