// Concurrency tests for the thread-safe wrapper (paper Sect. 5 extension).
#include "phtree/phtree_sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace phtree {
namespace {

TEST(PhTreeSync, BasicOperations) {
  PhTreeSync tree(2);
  EXPECT_TRUE(tree.Insert(PhKey{1, 2}, 3));
  EXPECT_FALSE(tree.Insert(PhKey{1, 2}, 4));
  EXPECT_EQ(tree.Find(PhKey{1, 2}), std::optional<uint64_t>(3));
  EXPECT_EQ(tree.CountWindow(PhKey{0, 0}, PhKey{5, 5}), 1u);
  EXPECT_TRUE(tree.Erase(PhKey{1, 2}));
  EXPECT_EQ(tree.size(), 0u);
}

TEST(PhTreeSync, ConcurrentDisjointWriters) {
  PhTreeSync tree(2);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        // Disjoint key ranges per thread.
        const PhKey key{(static_cast<uint64_t>(t) << 32) | rng.NextU64() %
                            0xFFFFFFFF,
                        rng.NextU64()};
        tree.InsertOrAssign(key, t);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_GT(tree.size(), 0u);
  EXPECT_LE(tree.size(), static_cast<size_t>(kThreads) * kPerThread);
}

TEST(PhTreeSync, ReadersDuringWrites) {
  PhTreeSync tree(2);
  for (uint64_t i = 0; i < 1000; ++i) {
    tree.Insert(PhKey{i, i}, i);
  }
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      Rng rng(7);
      // Bounded iterations: unbounded spinning readers starve the writer
      // through the shared lock on single-core machines.
      for (int iter = 0; iter < 3000 && !stop.load(); ++iter) {
        const uint64_t i = rng.NextBounded(1000);
        // Keys 0..999 are never removed; they must always be visible.
        if (!tree.Contains(PhKey{i, i})) {
          failed = true;
        }
        if (iter % 64 == 0 &&
            tree.CountWindow(PhKey{0, 0}, PhKey{~0ULL, ~0ULL}) < 1000) {
          failed = true;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
  }
  // Writer churns extra keys above the protected range.
  std::thread writer([&] {
    Rng rng(8);
    for (int i = 0; i < 5000; ++i) {
      const PhKey key{1000 + rng.NextBounded(500), rng.NextBounded(500)};
      if (rng.NextBool(0.5)) {
        tree.InsertOrAssign(key, i);
      } else {
        tree.Erase(key);
      }
    }
  });
  writer.join();
  stop = true;
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_GT(reads.load(), 0u);
}

TEST(PhTreeSync, ConcurrentChurnRecyclesArenaSafely) {
  // Insert/erase churn from several writers hammers the arena freelists
  // (node slots and word blocks are recycled constantly). The wrapper's
  // writer lock must make that safe: under ASan this is the test that
  // catches a double-free or use-after-recycle in the slab allocator.
  PhTreeSync tree(2);
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      Rng rng(200 + t);
      for (int i = 0; i < kOps; ++i) {
        // Small shared key space => high collision rate => constant node
        // splits and merges across threads.
        const PhKey key{rng.NextBounded(256), rng.NextBounded(256)};
        if (rng.NextBool(0.5)) {
          tree.InsertOrAssign(key, static_cast<uint64_t>(t));
        } else {
          tree.Erase(key);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const PhTreeStats stats = tree.ComputeStats();
  EXPECT_LE(stats.n_entries, 256u * 256u);
  // Accounting stayed exact through the churn: copy-on-write publications
  // may leave nodes retired but not yet past their grace period, and the
  // arena's live-byte meter carries them alongside the reachable bytes.
  EXPECT_EQ(stats.memory_bytes + stats.arena_retired_bytes,
            stats.arena_live_bytes);
}

}  // namespace
}  // namespace phtree
