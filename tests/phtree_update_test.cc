// Update(old_key, new_key): outcome semantics on hand-built shapes, the
// erase+insert equivalence against the ReferenceModel oracle (with the deep
// structural validator riding along), the fast-path/fallback split on
// nearby-move workloads, the concurrent wrappers (PhTreeSync and the
// cross-shard PhTreeSharded path), the allocation-fault sweep with an
// update-heavy mix, and the OpKind table's exhaustive round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "phtree/phtree.h"
#include "phtree/phtree_sync.h"
#include "phtree/sharded.h"
#include "phtree/validate.h"
#include "testlib/commands.h"
#include "testlib/fault_sweep.h"
#include "testlib/reference_model.h"

namespace phtree {
namespace {

TEST(Update, MovesEntryAndKeepsPayload) {
  PhTree tree(2);
  ASSERT_TRUE(tree.Insert(PhKey{5, 7}, 42));
  EXPECT_EQ(tree.Update(PhKey{5, 7}, PhKey{6, 9}), UpdateOutcome::kMoved);
  EXPECT_FALSE(tree.Contains(PhKey{5, 7}));
  EXPECT_EQ(tree.Find(PhKey{6, 9}), std::optional<uint64_t>(42));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(Update, ValueOverrideReplacesPayload) {
  PhTree tree(2);
  ASSERT_TRUE(tree.Insert(PhKey{5, 7}, 42));
  EXPECT_EQ(tree.Update(PhKey{5, 7}, PhKey{6, 9}, 99),
            UpdateOutcome::kMoved);
  EXPECT_EQ(tree.Find(PhKey{6, 9}), std::optional<uint64_t>(99));
}

TEST(Update, SameKeyIsPayloadRewrite) {
  PhTree tree(2);
  ASSERT_TRUE(tree.Insert(PhKey{5, 7}, 42));
  // Without an override the no-op move keeps the payload...
  EXPECT_EQ(tree.Update(PhKey{5, 7}, PhKey{5, 7}), UpdateOutcome::kMoved);
  EXPECT_EQ(tree.Find(PhKey{5, 7}), std::optional<uint64_t>(42));
  // ...and with one it rewrites in place.
  EXPECT_EQ(tree.Update(PhKey{5, 7}, PhKey{5, 7}, 11),
            UpdateOutcome::kMoved);
  EXPECT_EQ(tree.Find(PhKey{5, 7}), std::optional<uint64_t>(11));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(Update, OldMissingLeavesTreeUntouched) {
  PhTree tree(2);
  ASSERT_TRUE(tree.Insert(PhKey{1, 1}, 7));
  EXPECT_EQ(tree.Update(PhKey{5, 7}, PhKey{6, 9}),
            UpdateOutcome::kOldMissing);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_FALSE(tree.Contains(PhKey{6, 9}));
}

TEST(Update, NewOccupiedLeavesBothEntries) {
  PhTree tree(2);
  ASSERT_TRUE(tree.Insert(PhKey{5, 7}, 1));
  ASSERT_TRUE(tree.Insert(PhKey{6, 9}, 2));
  EXPECT_EQ(tree.Update(PhKey{5, 7}, PhKey{6, 9}),
            UpdateOutcome::kNewOccupied);
  EXPECT_EQ(tree.Find(PhKey{5, 7}), std::optional<uint64_t>(1));
  EXPECT_EQ(tree.Find(PhKey{6, 9}), std::optional<uint64_t>(2));
  EXPECT_EQ(tree.size(), 2u);
}

TEST(Update, OldMissingBeatsNewOccupied) {
  // Both preconditions fail: the old key's absence must win, matching the
  // ReferenceModel oracle's precedence.
  PhTree tree(2);
  ASSERT_TRUE(tree.Insert(PhKey{6, 9}, 2));
  EXPECT_EQ(tree.Update(PhKey{5, 7}, PhKey{6, 9}),
            UpdateOutcome::kOldMissing);
  // old == new on an absent key is old-missing too, not a trivial rewrite.
  EXPECT_EQ(tree.Update(PhKey{5, 7}, PhKey{5, 7}),
            UpdateOutcome::kOldMissing);
}

TEST(Update, EmptyTree) {
  PhTree tree(3);
  EXPECT_EQ(tree.Update(PhKey{1, 2, 3}, PhKey{4, 5, 6}),
            UpdateOutcome::kOldMissing);
  EXPECT_TRUE(tree.empty());
}

TEST(Update, NearbyMovesTakeTheFastPath) {
  // A cluster of keys sharing all high bits: small-step moves change only
  // low bits, so the LCA level sits inside the leaf and the relocation
  // never leaves the node.
  PhTree tree(2);
  const uint64_t base = uint64_t{1} << 40;
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(tree.Insert(PhKey{base + 8 * i, base + 8 * i}, i));
  }
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(tree.Update(PhKey{base + 8 * i, base + 8 * i},
                          PhKey{base + 8 * i + 1, base + 8 * i + 1}),
              UpdateOutcome::kMoved);
  }
  const PhUpdateStats& stats = tree.update_stats();
  EXPECT_EQ(stats.fast_path + stats.fallback, 64u);
  // +1 flips only the lowest bit; every move must relocate in place.
  EXPECT_EQ(stats.fast_path, 64u) << "fallbacks: " << stats.fallback;
  EXPECT_EQ(ValidatePhTreeDeep(tree), "");
}

TEST(Update, LongRangeMovesFallBack) {
  PhTree tree(2);
  Rng rng(7);
  for (int i = 0; i < 128; ++i) {
    tree.InsertOrAssign(PhKey{rng.NextU64(), rng.NextU64()},
                        static_cast<uint64_t>(i));
  }
  const size_t n = tree.size();
  std::vector<PhKey> keys;
  tree.ForEach([&](const PhKey& k, uint64_t) { keys.push_back(k); });
  size_t moved = 0;
  for (const PhKey& k : keys) {
    // A fresh random target: with 64-bit coordinates the XOR's top bit is
    // almost surely above any node's postfix length.
    const PhKey to{rng.NextU64(), rng.NextU64()};
    const UpdateOutcome out = tree.Update(k, to);
    if (out == UpdateOutcome::kMoved) {
      ++moved;
    } else {
      ASSERT_EQ(out, UpdateOutcome::kNewOccupied);
    }
  }
  EXPECT_EQ(tree.size(), n);
  EXPECT_GT(moved, 0u);
  EXPECT_GT(tree.update_stats().fallback, 0u);
  EXPECT_EQ(ValidatePhTreeDeep(tree), "");
}

// Update must be observationally identical to the oracle's
// check-then-erase-then-insert across a random churn mix; the deep
// validator guards the structure after every burst.
TEST(Update, RandomChurnMatchesReferenceModel) {
  constexpr uint32_t kDim = 2;
  constexpr uint64_t kGrid = 64;  // dense grid: collisions and near moves
  PhTree tree(kDim);
  testlib::ReferenceModel model(kDim);
  Rng rng(20260809);
  auto key = [&] { return PhKey{rng.NextBounded(kGrid), rng.NextBounded(kGrid)}; };
  for (int burst = 0; burst < 40; ++burst) {
    for (int op = 0; op < 100; ++op) {
      const uint64_t pick = rng.NextBounded(10);
      if (pick < 3) {
        const PhKey k = key();
        const uint64_t v = rng.NextU64();
        EXPECT_EQ(tree.Insert(k, v), model.Insert(k, v));
      } else if (pick < 5) {
        const PhKey k = key();
        EXPECT_EQ(tree.Erase(k), model.Erase(k));
      } else {
        const PhKey from = key();
        PhKey to = from;
        if (rng.NextBool(0.5)) {
          // Nearby perturbation (the fast-path shape).
          for (uint64_t& c : to) {
            c = (c + rng.NextBounded(3)) % kGrid;
          }
        } else {
          to = key();
        }
        const bool keep = rng.NextBool(0.5);
        const std::optional<uint64_t> v =
            keep ? std::nullopt : std::optional<uint64_t>(rng.NextU64());
        EXPECT_EQ(tree.Update(from, to, v), model.Update(from, to, v));
      }
    }
    ASSERT_EQ(tree.size(), model.size());
    ASSERT_EQ(ValidatePhTreeDeep(tree), "") << "burst " << burst;
    std::vector<std::pair<PhKey, uint64_t>> got, want;
    tree.ForEach([&](const PhKey& k, uint64_t v) { got.emplace_back(k, v); });
    model.ForEach(
        [&](const PhKey& k, uint64_t v) { want.emplace_back(k, v); });
    ASSERT_EQ(got, want) << "burst " << burst;
  }
}

TEST(UpdateSync, DelegatesWithLocking) {
  PhTreeSync tree(2);
  ASSERT_TRUE(tree.Insert(PhKey{5, 7}, 42));
  EXPECT_EQ(tree.Update(PhKey{5, 7}, PhKey{6, 9}), UpdateOutcome::kMoved);
  EXPECT_EQ(tree.Find(PhKey{6, 9}), std::optional<uint64_t>(42));
  EXPECT_EQ(tree.Update(PhKey{5, 7}, PhKey{6, 9}),
            UpdateOutcome::kOldMissing);
  EXPECT_EQ(tree.TryUpdate(PhKey{6, 9}, PhKey{6, 9}, 1),
            UpdateOutcome::kMoved);
  EXPECT_EQ(tree.Find(PhKey{6, 9}), std::optional<uint64_t>(1));
}

TEST(UpdateSharded, SameShardAndCrossShard) {
  PhTreeSharded tree(2, /*num_shards=*/8);
  // Find two keys routed to different shards and one same-shard pair.
  const PhKey a{0, 0};
  PhKey cross{0, 0};
  bool found = false;
  Rng rng(3);
  for (int i = 0; i < 256 && !found; ++i) {
    const PhKey cand{rng.NextU64(), rng.NextU64()};
    if (tree.ShardOf(cand) != tree.ShardOf(a)) {
      cross = cand;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no cross-shard key in 256 draws";

  ASSERT_TRUE(tree.Insert(a, 42));
  // Same-shard nearby move: single critical section, tree fast path.
  const PhKey b{1, 1};
  ASSERT_EQ(tree.ShardOf(a), tree.ShardOf(b));
  EXPECT_EQ(tree.Update(a, b), UpdateOutcome::kMoved);
  EXPECT_EQ(tree.Find(b), std::optional<uint64_t>(42));

  // Cross-shard move: two locks, insert-then-erase.
  EXPECT_EQ(tree.Update(b, cross), UpdateOutcome::kMoved);
  EXPECT_FALSE(tree.Contains(b));
  EXPECT_EQ(tree.Find(cross), std::optional<uint64_t>(42));
  EXPECT_EQ(tree.size(), 1u);

  // Cross-shard onto an occupied target leaves both entries.
  ASSERT_TRUE(tree.Insert(b, 7));
  EXPECT_EQ(tree.Update(b, cross), UpdateOutcome::kNewOccupied);
  EXPECT_EQ(tree.Find(b), std::optional<uint64_t>(7));
  EXPECT_EQ(tree.Find(cross), std::optional<uint64_t>(42));
  // And a missing source still beats an occupied target.
  EXPECT_EQ(tree.Update(PhKey{123456789, 42}, cross),
            UpdateOutcome::kOldMissing);
}

// Bounded tier-1 run of the exhaustive allocation-fault sweep with the mix
// tilted towards Update: every injected failure inside the relocation fast
// path and the insert-then-erase fallback must roll back cleanly.
TEST(UpdateFaultSweep, UpdateHeavyMixRollsBack) {
  testlib::FaultSweepOptions opts;
  opts.ops = 500;
  opts.seed = 11;
  opts.commands.dim = 2;
  opts.commands.grid_bits = 6;
  opts.commands.w_update = 40;  // dominate the mutation mix
  opts.commands.update_nearby_p = 0.7;
  opts.deep_every = 64;
  const testlib::FaultSweepReport report = testlib::RunFaultSweep(opts);
  EXPECT_TRUE(report.ok()) << report.failure;
  EXPECT_GT(report.ops_run, 0u);
  EXPECT_GT(report.injected_failures, 100u);
}

// Exhaustive OpKind round-trip: every enumerator has a distinct, stable
// name (the static_assert in commands.h ties kNumOpKinds to the enum; this
// covers the name table the same way).
TEST(OpKind, NameTableCoversEveryKind) {
  std::set<std::string> names;
  for (uint32_t k = 0; k < testlib::kNumOpKinds; ++k) {
    const char* name =
        testlib::OpKindName(static_cast<testlib::OpKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate OpKindName " << name;
    EXPECT_STRNE(name, "?") << "kind " << k << " fell through the switch";
  }
  EXPECT_EQ(names.size(), testlib::kNumOpKinds);
  EXPECT_STREQ(testlib::OpKindName(testlib::OpKind::kUpdate), "Update");
}

}  // namespace
}  // namespace phtree
