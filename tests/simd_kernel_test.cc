// The SIMD kernel layer (common/simd.h) promises that every dispatched
// implementation of a kernel is an exact drop-in for its scalar twin.
// These tests brute-force that promise — exhaustive small inputs plus
// seeded random sweeps, each run in both dispatch modes — and cover the
// batched point-query path built on the kernels (PhTree::FindBatch and
// its Sync/Sharded forms) against looped Find.
#include "common/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "phtree/phtree.h"
#include "phtree/phtree_sync.h"
#include "phtree/sharded.h"

namespace phtree {
namespace {

// Reference semantics of FindFirstStop, written independently of both the
// scalar twin and the vector variants.
size_t FindFirstStopOracle(const uint64_t* a, size_t n, uint64_t ml,
                           uint64_t mu) {
  for (size_t i = 0; i < n; ++i) {
    const bool valid = (a[i] | ml) == a[i] && (a[i] & mu) == a[i];
    if (valid || a[i] > mu) {
      return i;
    }
  }
  return n;
}

// Runs `body` once with the scalar table forced and once with the detected
// table (on hardware without vector support the two rounds coincide — the
// test then simply checks the scalar twin twice).
template <typename Body>
void InBothDispatchModes(const Body& body) {
  {
    simd::ScopedForceScalar force(true);
    ASSERT_TRUE(simd::ScalarForced());
    body("forced-scalar");
  }
  {
    simd::ScopedForceScalar force(false);
    body(simd::ActiveKernelName());
  }
}

TEST(SimdDispatch, KnobRoundTrips) {
  const bool was = simd::ScalarForced();
  simd::ForceScalar(true);
  EXPECT_TRUE(simd::ScalarForced());
  EXPECT_FALSE(simd::KernelsUseSimd());
  EXPECT_STREQ(simd::ActiveKernelName(), "scalar");
  simd::ForceScalar(false);
  EXPECT_EQ(simd::ScalarForced(),
            simd::DetectedOps() == &simd::internal::kScalarOps);
  EXPECT_STREQ(simd::ActiveKernelName(), simd::DetectedOps()->name);
  simd::ForceScalar(was);
}

TEST(SimdFindFirstStop, ExhaustiveSmallMasksAndAddresses) {
  // Every (mask_lower ⊆ mask_upper) pair over 4 bits, every single-element
  // array, plus every two-element array built from the 16 addresses: both
  // dispatch modes and the scalar twin must match the oracle exactly.
  InBothDispatchModes([](const char* mode) {
    for (uint64_t mu = 0; mu < 16; ++mu) {
      for (uint64_t ml = 0; ml < 16; ++ml) {
        if ((ml & ~mu) != 0) {
          continue;  // not a legal mask pair
        }
        for (uint64_t a0 = 0; a0 < 16; ++a0) {
          const uint64_t one[1] = {a0};
          const size_t want1 = FindFirstStopOracle(one, 1, ml, mu);
          ASSERT_EQ(simd::FindFirstStop(one, 1, ml, mu), want1)
              << mode << " ml=" << ml << " mu=" << mu << " a=" << a0;
          ASSERT_EQ(simd::internal::FindFirstStopScalar(one, 1, ml, mu),
                    want1);
          for (uint64_t a1 = 0; a1 < 16; ++a1) {
            const uint64_t two[2] = {a0, a1};
            const size_t want2 = FindFirstStopOracle(two, 2, ml, mu);
            ASSERT_EQ(simd::FindFirstStop(two, 2, ml, mu), want2)
                << mode << " ml=" << ml << " mu=" << mu << " a0=" << a0
                << " a1=" << a1;
          }
        }
      }
    }
  });
}

TEST(SimdFindFirstStop, RandomSweep64Bit) {
  // Random full-width masks and arrays spanning the vector width (0..19
  // elements covers the 4-lane main loop plus every tail length), with the
  // arrays biased so that stops land at controlled positions.
  InBothDispatchModes([](const char* mode) {
    Rng rng(20260809);
    for (int round = 0; round < 2000; ++round) {
      const uint64_t mu = rng.NextU64();
      const uint64_t ml = rng.NextU64() & mu;  // ml ⊆ mu
      uint64_t addrs[19];
      const size_t n = rng.NextBounded(20);
      for (size_t i = 0; i < n; ++i) {
        switch (rng.NextBounded(3)) {
          case 0:  // definitely valid
            addrs[i] = (rng.NextU64() & mu) | ml;
            break;
          case 1:  // arbitrary
            addrs[i] = rng.NextU64();
            break;
          default:  // near the window top, exercising the a > mu branch
            addrs[i] = mu + rng.NextBounded(3) - 1;
            break;
        }
      }
      const size_t want = FindFirstStopOracle(addrs, n, ml, mu);
      ASSERT_EQ(simd::FindFirstStop(addrs, n, ml, mu), want)
          << mode << " round " << round;
      ASSERT_EQ(simd::internal::FindFirstStopScalar(addrs, n, ml, mu), want)
          << "scalar twin, round " << round;
    }
  });
}

TEST(SimdCountOnes, ExhaustiveLengthsAndRandomWords) {
  InBothDispatchModes([](const char* mode) {
    Rng rng(7);
    std::vector<uint64_t> words(67);
    for (auto& w : words) {
      w = rng.NextU64() & rng.NextU64();  // vary density
    }
    for (size_t n = 0; n <= words.size(); ++n) {
      uint64_t want = 0;
      for (size_t i = 0; i < n; ++i) {
        want += static_cast<uint64_t>(std::popcount(words[i]));
      }
      ASSERT_EQ(simd::CountOnesWords(words.data(), n), want)
          << mode << " n=" << n;
      ASSERT_EQ(simd::internal::CountOnesWordsScalar(words.data(), n), want);
    }
    // Edge words.
    const uint64_t edges[4] = {0, ~uint64_t{0}, 1, uint64_t{1} << 63};
    ASSERT_EQ(simd::CountOnesWords(edges, 4), 66u) << mode;
  });
}

TEST(SimdKeyInBox, ExhaustiveSmallAndRandomSweep) {
  InBothDispatchModes([](const char* mode) {
    // Exhaustive over a 2-dimensional 0..3 grid.
    for (uint64_t k0 = 0; k0 < 4; ++k0) {
      for (uint64_t k1 = 0; k1 < 4; ++k1) {
        for (uint64_t l0 = 0; l0 < 4; ++l0) {
          for (uint64_t h0 = 0; h0 < 4; ++h0) {
            for (uint64_t l1 = 0; l1 < 4; ++l1) {
              for (uint64_t h1 = 0; h1 < 4; ++h1) {
                const uint64_t key[2] = {k0, k1};
                const uint64_t lo[2] = {l0, l1};
                const uint64_t hi[2] = {h0, h1};
                const bool want =
                    k0 >= l0 && k0 <= h0 && k1 >= l1 && k1 <= h1;
                ASSERT_EQ(simd::KeyInBox(key, lo, hi, 2), want) << mode;
              }
            }
          }
        }
      }
    }
    // Random sweep over every dimensionality the tree supports, with keys
    // biased onto box corners so boundary equality is exercised.
    Rng rng(99);
    for (int round = 0; round < 4000; ++round) {
      const size_t dim = 1 + rng.NextBounded(16);
      uint64_t key[16];
      uint64_t lo[16];
      uint64_t hi[16];
      bool want = true;
      for (size_t d = 0; d < dim; ++d) {
        uint64_t a = rng.NextU64();
        uint64_t b = rng.NextU64();
        if (a > b) {
          std::swap(a, b);
        }
        lo[d] = a;
        hi[d] = b;
        switch (rng.NextBounded(4)) {
          case 0:
            key[d] = a;  // on the lower corner
            break;
          case 1:
            key[d] = b;  // on the upper corner
            break;
          default:
            key[d] = rng.NextU64();
            break;
        }
        want = want && key[d] >= lo[d] && key[d] <= hi[d];
      }
      ASSERT_EQ(simd::KeyInBox(key, lo, hi, dim), want)
          << mode << " round " << round << " dim " << dim;
      ASSERT_EQ(simd::internal::KeyInBoxScalar(key, lo, hi, dim), want);
    }
  });
}

TEST(SimdBoxesOverlap, RandomSweepWithTouchingEdges) {
  InBothDispatchModes([](const char* mode) {
    Rng rng(123);
    for (int round = 0; round < 4000; ++round) {
      const size_t dim = 1 + rng.NextBounded(16);
      uint64_t alo[16];
      uint64_t ahi[16];
      uint64_t blo[16];
      uint64_t bhi[16];
      bool want = true;
      for (size_t d = 0; d < dim; ++d) {
        // Small coordinates make touching and just-disjoint intervals
        // common; full-width values would practically always overlap.
        uint64_t a = rng.NextBounded(8);
        uint64_t b = rng.NextBounded(8);
        if (a > b) {
          std::swap(a, b);
        }
        uint64_t c = rng.NextBounded(8);
        uint64_t e = rng.NextBounded(8);
        if (c > e) {
          std::swap(c, e);
        }
        alo[d] = a;
        ahi[d] = b;
        blo[d] = c;
        bhi[d] = e;
        want = want && a <= e && c <= b;
      }
      ASSERT_EQ(simd::BoxesOverlap(alo, ahi, blo, bhi, dim), want)
          << mode << " round " << round << " dim " << dim;
      ASSERT_EQ(simd::internal::BoxesOverlapScalar(alo, ahi, blo, bhi, dim),
                want);
    }
  });
}

// Reference for ZSamplePrefix: one bit at a time, MSB-first per level,
// dimension 0 first within a level — exactly how the tree's hypercube
// addresses interleave.
uint64_t ZSampleOracle(const uint64_t* key, uint32_t dim) {
  uint64_t s = 0;
  for (uint32_t level = 0; level < 64 / dim; ++level) {
    for (uint32_t d = 0; d < dim; ++d) {
      s = (s << 1) | ((key[d] >> (63 - level)) & 1u);
    }
  }
  return s;
}

TEST(SimdZSample, SingleBitPositionsExhaustive) {
  // For every dimensionality, setting exactly one sampled bit in the key
  // must set exactly the corresponding interleaved bit in the sample.
  InBothDispatchModes([](const char* mode) {
    for (uint32_t dim = 1; dim <= 16; ++dim) {
      const uint32_t levels = 64 / dim;
      for (uint32_t d = 0; d < dim; ++d) {
        for (uint32_t level = 0; level < levels; ++level) {
          uint64_t key[16] = {};
          key[d] = uint64_t{1} << (63 - level);
          const uint64_t want = uint64_t{1}
                                << (levels * dim - 1 - (level * dim + d));
          ASSERT_EQ(simd::ZSamplePrefix(key, dim), want)
              << mode << " dim=" << dim << " d=" << d << " level=" << level;
        }
        // An unsampled bit (below the top `levels`) must not leak in.
        if (levels < 64) {
          uint64_t key[16] = {};
          key[d] = uint64_t{1} << (63 - levels);
          ASSERT_EQ(simd::ZSamplePrefix(key, dim), 0u) << mode << " dim="
                                                       << dim << " d=" << d;
        }
      }
    }
  });
}

TEST(SimdZSample, MatchesOracleRandomSweep) {
  InBothDispatchModes([](const char* mode) {
    Rng rng(4242);
    uint64_t key[64];
    for (int round = 0; round < 4000; ++round) {
      // Dense coverage of low dims plus the div/mod edge cases (33..64
      // sample one bit per dimension; 64 is the contract's upper bound).
      const uint32_t dims[] = {1,  2,  3,  4,  5,  6,  7,  8,
                               14, 16, 21, 31, 32, 33, 63, 64};
      const uint32_t dim = dims[rng.NextBounded(16)];
      for (uint32_t d = 0; d < dim; ++d) {
        key[d] = rng.NextU64();
      }
      const uint64_t want = ZSampleOracle(key, dim);
      ASSERT_EQ(simd::ZSamplePrefix(key, dim), want)
          << mode << " round " << round << " dim " << dim;
      ASSERT_EQ(simd::internal::ZSampleScalar(key, dim), want)
          << "scalar twin, round " << round << " dim " << dim;
    }
  });
}

// ---- FindBatch --------------------------------------------------------------

PhKey RandomGridKey(Rng& rng, uint32_t dim, uint32_t bits) {
  PhKey key(dim);
  for (auto& w : key) {
    w = rng.NextU64() & ((uint64_t{1} << bits) - 1);
  }
  return key;
}

TEST(FindBatch, DuplicateMissingUnsortedKeys) {
  InBothDispatchModes([](const char* mode) {
    PhTree tree(3);
    const PhKey a{5, 9, 1};
    const PhKey b{5, 9, 2};
    const PhKey c{1000, 2, 77};
    ASSERT_TRUE(tree.Insert(a, 10));
    ASSERT_TRUE(tree.Insert(b, 20));
    ASSERT_TRUE(tree.Insert(c, 30));
    const PhKey missing{5, 9, 3};
    // Deliberately unsorted, with duplicates of both present and absent
    // keys.
    const std::vector<PhKey> batch{c, missing, a, a, b, missing, c};
    const auto got = tree.FindBatch(batch);
    ASSERT_EQ(got.size(), batch.size()) << mode;
    EXPECT_EQ(got[0], std::optional<uint64_t>(30)) << mode;
    EXPECT_EQ(got[1], std::nullopt) << mode;
    EXPECT_EQ(got[2], std::optional<uint64_t>(10)) << mode;
    EXPECT_EQ(got[3], std::optional<uint64_t>(10)) << mode;
    EXPECT_EQ(got[4], std::optional<uint64_t>(20)) << mode;
    EXPECT_EQ(got[5], std::nullopt) << mode;
    EXPECT_EQ(got[6], std::optional<uint64_t>(30)) << mode;
  });
}

TEST(FindBatch, EmptyBatchAndEmptyTree) {
  PhTree tree(2);
  EXPECT_TRUE(tree.FindBatch({}).empty());
  const std::vector<PhKey> batch{{1, 2}, {3, 4}};
  const auto got = tree.FindBatch(batch);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::nullopt);
  EXPECT_EQ(got[1], std::nullopt);
}

TEST(FindBatch, MatchesLoopedFindOnRandomTrees) {
  InBothDispatchModes([](const char* mode) {
    Rng rng(20260808);
    for (uint32_t dim : {1u, 2u, 3u, 6u, 14u}) {
      PhTree tree(dim);
      // Narrow grid: plenty of shared prefixes, duplicates and misses.
      const uint32_t bits = dim <= 3 ? 6 : 4;
      for (int i = 0; i < 600; ++i) {
        tree.Insert(RandomGridKey(rng, dim, bits), rng.NextU64());
      }
      std::vector<PhKey> batch;
      for (int i = 0; i < 500; ++i) {
        batch.push_back(RandomGridKey(rng, dim, bits));
      }
      // A stretch of consecutive duplicates.
      batch.push_back(batch[0]);
      batch.push_back(batch[0]);
      const auto got = tree.FindBatch(batch);
      ASSERT_EQ(got.size(), batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(got[i], tree.Find(batch[i]))
            << mode << " dim=" << dim << " i=" << i;
      }
    }
  });
}

TEST(FindBatch, SyncAndShardedAgreeWithPlain) {
  InBothDispatchModes([](const char* mode) {
    Rng rng(31337);
    const uint32_t dim = 3;
    PhTree plain(dim);
    PhTreeSync sync(dim);
    PhTreeSharded sharded_z(dim, 4, ShardRouting::kZPrefix);
    PhTreeSharded sharded_h(dim, 4, ShardRouting::kHash);
    for (int i = 0; i < 400; ++i) {
      const PhKey key = RandomGridKey(rng, dim, 8);
      const uint64_t value = rng.NextU64();
      plain.Insert(key, value);
      sync.Insert(key, value);
      sharded_z.Insert(key, value);
      sharded_h.Insert(key, value);
    }
    std::vector<PhKey> batch;
    for (int i = 0; i < 300; ++i) {
      batch.push_back(RandomGridKey(rng, dim, 8));
    }
    const auto want = plain.FindBatch(batch);
    EXPECT_EQ(sync.FindBatch(batch), want) << mode;
    EXPECT_EQ(sharded_z.FindBatch(batch), want) << mode;
    EXPECT_EQ(sharded_h.FindBatch(batch), want) << mode;
  });
}

}  // namespace
}  // namespace phtree
