// Tests for the fixed thread pool backing the sharded PH-tree's parallel
// bulk loads and query fan-outs.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace phtree {
namespace {

TEST(ThreadPool, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  // The destructor drains the queue before joining; scope the pool to force
  // that here.
  {
    ThreadPool inner(2);
    for (int i = 0; i < 50; ++i) {
      inner.Submit([&count] { count.fetch_add(1); });
    }
  }
  while (count.load() < 150) {
    std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForSmallAndEdgeCases) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(0, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
  // More tasks than threads, fewer tasks than threads.
  pool.ParallelFor(2, [&](size_t) { count.fetch_add(1); });
  pool.ParallelFor(17, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1 + 2 + 17);
}

TEST(ThreadPool, ParallelForIsReusable) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&sum](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 100u * 99u / 2);
  }
}

TEST(ThreadPool, ParallelForFromManyThreadsConcurrently) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&pool, &total] {
      for (int round = 0; round < 10; ++round) {
        pool.ParallelFor(50, [&total](size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& th : callers) {
    th.join();
  }
  EXPECT_EQ(total.load(), 4u * 10u * 50u);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> out(64, 0);
  pool.ParallelFor(out.size(), [&out](size_t i) {
    out[i] = static_cast<int>(i) * 2;
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
  }
}

}  // namespace
}  // namespace phtree
