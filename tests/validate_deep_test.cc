// Tests for the deepened structural validator (ValidatePhTreeDeep):
// path-key reconstruction with strict z-order monotonicity, self-lookup of
// every reconstructed key, and the ComputeStats / arena accounting
// cross-checks — across representations, dimensionalities, churn,
// serialisation round-trips and moves.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "phtree/phtree.h"
#include "phtree/serialize.h"
#include "phtree/validate.h"

namespace phtree {
namespace {

PhKey RandomKey(Rng& rng, uint32_t dim, uint32_t key_bits) {
  PhKey key(dim);
  for (auto& v : key) {
    v = rng.NextU64() & LowMask(key_bits);
  }
  return key;
}

TEST(ValidateDeepTest, EmptyAndSingleEntry) {
  PhTree tree(3);
  EXPECT_EQ(ValidatePhTreeDeep(tree), "");
  ASSERT_TRUE(tree.Insert(PhKey{1, 2, 3}, 42));
  EXPECT_EQ(ValidatePhTreeDeep(tree), "");
  ASSERT_TRUE(tree.Erase(PhKey{1, 2, 3}));
  EXPECT_EQ(ValidatePhTreeDeep(tree), "");
}

TEST(ValidateDeepTest, HoldsAcrossReprsAndDims) {
  for (const NodeRepr repr :
       {NodeRepr::kAdaptive, NodeRepr::kLhcOnly, NodeRepr::kHcOnly}) {
    for (const uint32_t dim : {1u, 2u, 3u, 8u, 16u}) {
      PhTreeConfig cfg;
      cfg.repr = repr;
      PhTree tree(dim);
      Rng rng(dim * 31 + static_cast<uint32_t>(repr));
      for (int i = 0; i < 1500; ++i) {
        tree.Insert(RandomKey(rng, dim, dim <= 3 ? 8 : 2), rng.NextU64());
      }
      ASSERT_EQ(ValidatePhTreeDeep(tree), "")
          << "dim " << dim << " repr " << static_cast<int>(repr);
    }
  }
}

TEST(ValidateDeepTest, HoldsUnderChurn) {
  PhTree tree(2);
  Rng rng(7);
  std::vector<PhKey> keys;
  for (int i = 0; i < 3000; ++i) {
    keys.push_back(RandomKey(rng, 2, 6));
    tree.Insert(keys.back(), i);
  }
  for (int round = 0; round < 4; ++round) {
    for (size_t i = round; i < keys.size(); i += 3) {
      tree.Erase(keys[i]);
    }
    ASSERT_EQ(ValidatePhTreeDeep(tree), "") << "round " << round;
    for (size_t i = round; i < keys.size(); i += 3) {
      tree.Insert(keys[i], round);
    }
    ASSERT_EQ(ValidatePhTreeDeep(tree), "") << "round " << round;
  }
}

TEST(ValidateDeepTest, HoldsInKeyOnlyMode) {
  PhTreeConfig cfg;
  cfg.store_values = false;
  PhTree tree(3, cfg);
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    tree.Insert(RandomKey(rng, 3, 5), rng.NextU64());
  }
  // Key-only postfix entries report payload 0; the self-lookup comparison
  // must treat that consistently on both sides.
  EXPECT_EQ(ValidatePhTreeDeep(tree), "");
}

TEST(ValidateDeepTest, HoldsAfterSerializeRoundTripAndMove) {
  PhTree tree(4);
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    tree.Insert(RandomKey(rng, 4, 4), rng.NextU64());
  }
  const std::vector<uint8_t> bytes = SerializePhTree(tree);
  Expected<PhTree, SnapshotError> loaded = DeserializePhTreeOr(bytes);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().ToString();
  EXPECT_EQ(ValidatePhTreeDeep(*loaded), "");

  PhTree moved = std::move(*loaded);
  EXPECT_EQ(ValidatePhTreeDeep(moved), "");
}

TEST(ValidateDeepTest, HoldsAfterClearAndRefill) {
  PhTree tree(2);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    tree.Insert(RandomKey(rng, 2, 10), i);
  }
  tree.Clear();
  EXPECT_EQ(ValidatePhTreeDeep(tree), "");
  for (int i = 0; i < 1000; ++i) {
    tree.Insert(RandomKey(rng, 2, 10), i);
  }
  EXPECT_EQ(ValidatePhTreeDeep(tree), "");
}

TEST(ValidateDeepTest, OptionsDisableIndividualChecks) {
  PhTree tree(2);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(RandomKey(rng, 2, 8), i);
  }
  DeepValidateOptions no_stats;
  no_stats.check_stats = false;
  EXPECT_EQ(ValidatePhTreeDeep(tree, no_stats), "");
  DeepValidateOptions no_lookup;
  no_lookup.check_self_lookup = false;
  EXPECT_EQ(ValidatePhTreeDeep(tree, no_lookup), "");
}

TEST(ValidateDeepTest, ShallowValidatorStillWorks) {
  PhTree tree(2);
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(RandomKey(rng, 2, 8), i);
  }
  EXPECT_EQ(ValidatePhTree(tree), "");
}

}  // namespace
}  // namespace phtree
