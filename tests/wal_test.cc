// WAL format + recovery: writer/replay round-trips, the per-byte truncation
// and per-bit corruption sweeps (region -> error-class mapping), and the
// crash-point harnesses — FaultyVfs write budgets sweep "the process died
// after byte N of a WAL append / during the snapshot rename" and recovery
// must always yield a clean prefix of the applied command sequence.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/fault.h"
#include "common/vfs.h"
#include "phtree/phtree.h"
#include "phtree/serialize.h"
#include "phtree/validate.h"
#include "phtree/wal.h"

namespace phtree {
namespace {

std::string TmpPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

void RemoveFile(const std::string& path) { std::remove(path.c_str()); }

/// A canned command sequence with every opcode (clear in the middle) plus
/// the oracle map it should produce.
struct Script {
  std::vector<WalCommand> commands;
  std::map<PhKey, uint64_t> expect;  // final state
};

Script MakeScript(uint32_t dim, size_t n) {
  Script s;
  std::map<PhKey, uint64_t> state;
  uint64_t x = 12345;
  const auto next = [&x]() {  // tiny deterministic LCG
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  for (size_t i = 0; i < n; ++i) {
    WalCommand cmd;
    if (i == n / 2) {
      cmd.op = WalOp::kClear;
      state.clear();
    } else {
      cmd.op = static_cast<WalOp>(1 + next() % 3);
      cmd.key.resize(dim);
      for (uint64_t& w : cmd.key) {
        w = next() % 23;  // dense: duplicate inserts and erase hits
      }
      cmd.value = next();
      switch (cmd.op) {
        case WalOp::kInsert:
          state.emplace(cmd.key, cmd.value);
          break;
        case WalOp::kInsertOrAssign:
          state[cmd.key] = cmd.value;
          break;
        case WalOp::kErase:
          state.erase(cmd.key);
          break;
        case WalOp::kClear:
          break;
      }
    }
    s.commands.push_back(cmd);
  }
  s.expect = state;
  return s;
}

/// The oracle state after the first `k` commands of a script.
std::map<PhKey, uint64_t> StateAfter(const Script& s, size_t k) {
  std::map<PhKey, uint64_t> state;
  for (size_t i = 0; i < k; ++i) {
    const WalCommand& cmd = s.commands[i];
    switch (cmd.op) {
      case WalOp::kInsert:
        state.emplace(cmd.key, cmd.value);
        break;
      case WalOp::kInsertOrAssign:
        state[cmd.key] = cmd.value;
        break;
      case WalOp::kErase:
        state.erase(cmd.key);
        break;
      case WalOp::kClear:
        state.clear();
        break;
    }
  }
  return state;
}

std::map<PhKey, uint64_t> TreeState(const PhTree& tree) {
  std::map<PhKey, uint64_t> state;
  tree.ForEach(
      [&state](const PhKey& k, uint64_t v) { state.emplace(k, v); });
  return state;
}

TEST(WalWriter, RoundTripAllOpcodes) {
  const std::string path = TmpPath("wal_roundtrip.wal");
  RemoveFile(path);
  const Script script = MakeScript(/*dim=*/3, /*n=*/60);
  {
    auto writer = WalWriter::Open(path, 3, /*store_values=*/true);
    ASSERT_TRUE(writer) << writer.error().ToString();
    for (const WalCommand& cmd : script.commands) {
      ASSERT_TRUE(writer->Append(cmd).ok());
    }
    EXPECT_EQ(writer->appended(), script.commands.size());
    ASSERT_TRUE(writer->Close().ok());
  }
  PhTree tree(3);
  const auto stats = ReplayWalFile(path, &tree);
  ASSERT_TRUE(stats) << stats.error().ToString();
  EXPECT_EQ(stats->records_applied, script.commands.size());
  EXPECT_FALSE(stats->torn_tail);
  EXPECT_EQ(TreeState(tree), script.expect);
  EXPECT_EQ(ValidatePhTreeDeep(tree), "");
  RemoveFile(path);
}

TEST(WalWriter, ReopenAppendsAndChecksShape) {
  const std::string path = TmpPath("wal_reopen.wal");
  RemoveFile(path);
  {
    auto w = WalWriter::Open(path, 2, true);
    ASSERT_TRUE(w);
    ASSERT_TRUE(w->AppendInsert(PhKey{1, 2}, 10).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  {
    auto w = WalWriter::Open(path, 2, true);  // same shape: append more
    ASSERT_TRUE(w) << w.error().ToString();
    ASSERT_TRUE(w->AppendInsert(PhKey{3, 4}, 11).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  {
    auto w = WalWriter::Open(path, 3, true);  // wrong dim: rejected
    ASSERT_FALSE(w);
    EXPECT_EQ(w.error().code(), StatusCode::kHeaderCorrupt);
  }
  PhTree tree(2);
  const auto stats = ReplayWalFile(path, &tree);
  ASSERT_TRUE(stats);
  EXPECT_EQ(stats->records_applied, 2u);
  EXPECT_EQ(tree.size(), 2u);
  RemoveFile(path);
}

TEST(WalWriter, KeyDimMismatchIsInvalidArgument) {
  const std::string path = TmpPath("wal_baddim.wal");
  RemoveFile(path);
  auto w = WalWriter::Open(path, 2, true);
  ASSERT_TRUE(w);
  EXPECT_EQ(w->AppendInsert(PhKey{1, 2, 3}, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(w->appended(), 0u);
  RemoveFile(path);
}

/// Builds an in-memory log and the byte offset where each record starts.
std::vector<uint8_t> EncodeScript(const Script& script, uint32_t dim,
                                  std::vector<size_t>* record_starts) {
  std::vector<uint8_t> bytes;
  EncodeWalHeader(dim, true, &bytes);
  for (const WalCommand& cmd : script.commands) {
    record_starts->push_back(bytes.size());
    EncodeWalRecord(cmd, dim, true, &bytes);
  }
  return bytes;
}

// Per-byte truncation sweep: every prefix of the log must either fail with
// a typed header error (cut inside the header) or replay exactly the
// records wholly contained in it, flagging a torn tail iff the cut is not
// on a record boundary.
TEST(WalReplay, TruncationSweepEveryByte) {
  const uint32_t dim = 2;
  const Script script = MakeScript(dim, 24);
  std::vector<size_t> starts;
  const std::vector<uint8_t> bytes = EncodeScript(script, dim, &starts);
  starts.push_back(bytes.size());  // sentinel: end is also a boundary

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::span<const uint8_t> prefix(bytes.data(), cut);
    PhTree tree(dim);
    const auto stats = ReplayWal(prefix, &tree);
    if (cut < kWalHeaderLen) {
      ASSERT_FALSE(stats) << "cut " << cut;
      EXPECT_EQ(stats.error().code(), StatusCode::kTruncated) << "cut " << cut;
      continue;
    }
    ASSERT_TRUE(stats) << "cut " << cut << ": " << stats.error().ToString();
    // Records wholly inside the prefix.
    size_t whole = 0;
    while (whole < script.commands.size() && starts[whole + 1] <= cut) {
      ++whole;
    }
    EXPECT_EQ(stats->records_applied, whole) << "cut " << cut;
    EXPECT_EQ(stats->valid_bytes, starts[whole]) << "cut " << cut;
    const bool on_boundary = cut == starts[whole];
    EXPECT_EQ(stats->torn_tail, !on_boundary) << "cut " << cut;
    EXPECT_EQ(TreeState(tree), StateAfter(script, whole)) << "cut " << cut;
    EXPECT_EQ(ValidatePhTreeDeep(tree), "") << "cut " << cut;
  }
}

// Per-bit corruption sweep: flipping any single bit must map cleanly by
// region — header damage is a hard typed error; record damage truncates
// replay at that record (CRC32C catches every single-bit error), keeping
// everything before it.
TEST(WalReplay, BitFlipSweepEveryBit) {
  const uint32_t dim = 2;
  const Script script = MakeScript(dim, 12);
  std::vector<size_t> starts;
  const std::vector<uint8_t> base = EncodeScript(script, dim, &starts);
  starts.push_back(base.size());

  for (size_t bit = 0; bit < base.size() * 8; ++bit) {
    std::vector<uint8_t> bytes = base;
    bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    PhTree tree(dim);
    const auto stats = ReplayWal(bytes, &tree);
    const size_t at = bit / 8;
    if (at < kWalHeaderLen) {
      // Header region: magic -> kBadMagic, version -> kUnsupportedVersion
      // or CRC, everything else -> CRC/range. Always a hard error.
      ASSERT_FALSE(stats) << "bit " << bit;
      const StatusCode code = stats.error().code();
      EXPECT_TRUE(code == StatusCode::kBadMagic ||
                  code == StatusCode::kUnsupportedVersion ||
                  code == StatusCode::kHeaderCorrupt)
          << "bit " << bit << ": " << stats.error().ToString();
      continue;
    }
    // Record region: replay keeps every record before the damaged one and
    // reports a torn tail there (a flipped length field may also claim an
    // implausible size — same class, same truncation point).
    size_t damaged = 0;
    while (starts[damaged + 1] <= at) {
      ++damaged;
    }
    ASSERT_TRUE(stats) << "bit " << bit << ": " << stats.error().ToString();
    EXPECT_TRUE(stats->torn_tail) << "bit " << bit;
    EXPECT_EQ(stats->records_applied, damaged) << "bit " << bit;
    EXPECT_EQ(stats->valid_bytes, starts[damaged]) << "bit " << bit;
    EXPECT_EQ(TreeState(tree), StateAfter(script, damaged)) << "bit " << bit;
  }
}

TEST(WalReplay, CrcValidGarbageIsHardError) {
  const uint32_t dim = 2;
  std::vector<uint8_t> bytes;
  EncodeWalHeader(dim, true, &bytes);
  // A record that frames and checksums correctly but carries an unknown
  // opcode: a crash cannot produce this, so it is kRecordCorrupt, not a
  // torn tail.
  WalCommand cmd;
  cmd.op = WalOp::kClear;
  EncodeWalRecord(cmd, dim, true, &bytes);
  bytes[bytes.size() - 5] = 99;  // payload byte (opcode) of the clear
  // Re-checksum the 1-byte payload so the CRC still verifies.
  const uint8_t opcode = 99;
  const uint32_t crc = Crc32c(&opcode, 1);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  PhTree tree(dim);
  const auto stats = ReplayWal(bytes, &tree);
  ASSERT_FALSE(stats);
  EXPECT_EQ(stats.error().code(), StatusCode::kRecordCorrupt);
}

TEST(WalReplay, ShapeMismatchRejected) {
  std::vector<uint8_t> bytes;
  EncodeWalHeader(3, true, &bytes);
  PhTree tree(2);  // wrong dim
  const auto stats = ReplayWal(bytes, &tree);
  ASSERT_FALSE(stats);
  EXPECT_EQ(stats.error().code(), StatusCode::kHeaderCorrupt);
}

// ---- RecoverPhTree ------------------------------------------------------

TEST(Recover, SnapshotPlusWal) {
  const std::string snap = TmpPath("rec_snap.phtree");
  const std::string wal = TmpPath("rec_snap.wal");
  RemoveFile(snap);
  RemoveFile(wal);
  const Script script = MakeScript(3, 40);
  // First half is snapshotted; second half lives only in the WAL.
  PhTree tree(3);
  const size_t half = script.commands.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    const WalCommand& c = script.commands[i];
    switch (c.op) {
      case WalOp::kInsert: tree.Insert(c.key, c.value); break;
      case WalOp::kInsertOrAssign: tree.InsertOrAssign(c.key, c.value); break;
      case WalOp::kErase: tree.Erase(c.key); break;
      case WalOp::kClear: tree.Clear(); break;
    }
  }
  ASSERT_TRUE(SavePhTreeOr(tree, snap).ok());
  {
    auto w = WalWriter::Open(wal, 3, true);
    ASSERT_TRUE(w);
    for (size_t i = half; i < script.commands.size(); ++i) {
      ASSERT_TRUE(w->Append(script.commands[i]).ok());
    }
    ASSERT_TRUE(w->Close().ok());
  }
  WalReplayStats stats;
  auto recovered = RecoverPhTree(snap, wal, {}, &stats);
  ASSERT_TRUE(recovered) << recovered.error().ToString();
  EXPECT_EQ(stats.records_applied, script.commands.size() - half);
  EXPECT_EQ(TreeState(*recovered), script.expect);
  EXPECT_EQ(ValidatePhTreeDeep(*recovered), "");
  RemoveFile(snap);
  RemoveFile(wal);
}

TEST(Recover, WalOnlyAndMissingEverything) {
  const std::string snap = TmpPath("rec_missing.phtree");
  const std::string wal = TmpPath("rec_missing.wal");
  RemoveFile(snap);
  RemoveFile(wal);
  // Both missing: a typed error, not a silent empty tree.
  auto none = RecoverPhTree(snap, wal);
  ASSERT_FALSE(none);
  EXPECT_EQ(none.error().code(), StatusCode::kIoError);
  // WAL only: the header shapes the tree.
  const Script script = MakeScript(2, 30);
  {
    auto w = WalWriter::Open(wal, 2, true);
    ASSERT_TRUE(w);
    for (const WalCommand& c : script.commands) {
      ASSERT_TRUE(w->Append(c).ok());
    }
    ASSERT_TRUE(w->Close().ok());
  }
  auto recovered = RecoverPhTree(snap, wal);
  ASSERT_TRUE(recovered) << recovered.error().ToString();
  EXPECT_EQ(recovered->dim(), 2u);
  EXPECT_EQ(TreeState(*recovered), script.expect);
  RemoveFile(wal);
}

TEST(Recover, ZeroLengthWalIsAbsent) {
  const std::string snap = TmpPath("rec_zero.phtree");
  const std::string wal = TmpPath("rec_zero.wal");
  PhTree tree(2);
  tree.Insert(PhKey{1, 2}, 3);
  ASSERT_TRUE(SavePhTreeOr(tree, snap).ok());
  { std::fclose(std::fopen(wal.c_str(), "wb")); }  // 0 bytes: pre-header crash
  auto recovered = RecoverPhTree(snap, wal);
  ASSERT_TRUE(recovered) << recovered.error().ToString();
  EXPECT_EQ(recovered->size(), 1u);
  RemoveFile(snap);
  RemoveFile(wal);
}

// ---- Crash points -------------------------------------------------------

// Sweep "the process died after byte N of appending to the WAL": for every
// budget N the file holds some prefix of the record stream plus at most one
// torn record, and recovery must yield exactly the state after the records
// that fully reached disk.
TEST(CrashPoint, WalAppendSweep) {
  const uint32_t dim = 2;
  const Script script = MakeScript(dim, 20);
  std::vector<size_t> starts;
  const std::vector<uint8_t> full = EncodeScript(script, dim, &starts);
  starts.push_back(full.size());
  const std::string wal = TmpPath("crash_append.wal");
  const std::string snap = TmpPath("crash_append.phtree");  // never exists
  RemoveFile(snap);

  // Budgets stepping through every record boundary and several mid-record
  // cuts (every 3 bytes keeps the sweep fast but hits all three torn cases:
  // torn length, torn body, torn CRC).
  for (size_t budget = kWalHeaderLen; budget <= full.size(); budget += 3) {
    RemoveFile(wal);
    {
      FaultyVfs vfs;
      ScopedVfs scoped(&vfs);
      vfs.SetWriteBudget(budget);
      auto w = WalWriter::Open(wal, dim, true);
      if (!w) {
        continue;  // died inside the header write: nothing to recover
      }
      for (const WalCommand& cmd : script.commands) {
        if (!w->Append(cmd).ok()) {
          break;  // the "process" is dead; later appends fail too
        }
      }
      // No Close(): the crash takes the fd with it.
    }
    WalReplayStats stats;
    auto recovered = RecoverPhTree(snap, wal, {}, &stats);
    ASSERT_TRUE(recovered)
        << "budget " << budget << ": " << recovered.error().ToString();
    // The file is a prefix of the canonical stream; whatever number of
    // whole records made it, the tree must equal that exact prefix state.
    const size_t applied = static_cast<size_t>(stats.records_applied);
    ASSERT_LE(applied, script.commands.size());
    EXPECT_EQ(TreeState(*recovered), StateAfter(script, applied))
        << "budget " << budget;
    EXPECT_EQ(ValidatePhTreeDeep(*recovered), "") << "budget " << budget;
    // And the number of whole records matches the budget's boundary.
    size_t whole = 0;
    while (whole < script.commands.size() && starts[whole + 1] <= budget) {
      ++whole;
    }
    EXPECT_EQ(applied, whole) << "budget " << budget;
  }
  RemoveFile(wal);
}

// "The process died during the snapshot rewrite": the atomic tmp+rename
// save either fully replaces the snapshot or leaves the old one intact, so
// recovery (snapshot + unchanged WAL) never sees a half-written file.
TEST(CrashPoint, SnapshotRewriteSweep) {
  const std::string snap = TmpPath("crash_snap.phtree");
  const std::string wal = TmpPath("crash_snap.wal");
  RemoveFile(snap);
  RemoveFile(wal);
  PhTree v1(2);
  for (uint64_t i = 0; i < 40; ++i) {
    v1.Insert(PhKey{i, i * 7}, i);
  }
  ASSERT_TRUE(SavePhTreeOr(v1, snap).ok());
  PhTree v2(2);
  for (uint64_t i = 0; i < 80; ++i) {
    v2.Insert(PhKey{i * 3, i}, i + 1);
  }
  const std::vector<uint8_t> v2_bytes = SerializePhTree(v2);

  size_t replaced = 0;
  size_t preserved = 0;
  for (size_t budget = 0; budget <= v2_bytes.size() + 8; budget += 7) {
    FaultyVfs vfs;
    {
      ScopedVfs scoped(&vfs);
      vfs.SetWriteBudget(budget);
      (void)SavePhTreeOr(v2, snap);  // may "crash" mid-write or mid-rename
    }
    auto recovered = RecoverPhTree(snap, wal);
    ASSERT_TRUE(recovered)
        << "budget " << budget << ": " << recovered.error().ToString();
    const size_t n = recovered->size();
    ASSERT_TRUE(n == v1.size() || n == v2.size()) << "budget " << budget;
    if (n == v2.size()) {
      ++replaced;
    } else {
      ++preserved;
    }
    EXPECT_EQ(ValidatePhTreeDeep(*recovered), "") << "budget " << budget;
    if (n == v2.size()) {
      // Reset to v1 so every budget starts from the same old snapshot.
      ASSERT_TRUE(SavePhTreeOr(v1, snap).ok());
    }
  }
  EXPECT_GT(preserved, 0u);  // small budgets must keep the old snapshot
  EXPECT_GT(replaced, 0u);   // large budgets complete the rewrite
  RemoveFile(snap);
}

// Injected rename failure during the snapshot swap: the save reports the
// error and the previous snapshot remains loadable.
TEST(CrashPoint, RenameFailureKeepsOldSnapshot) {
  const std::string snap = TmpPath("crash_rename.phtree");
  RemoveFile(snap);
  PhTree v1(2);
  v1.Insert(PhKey{1, 1}, 10);
  ASSERT_TRUE(SavePhTreeOr(v1, snap).ok());
  PhTree v2(2);
  v2.Insert(PhKey{2, 2}, 20);
  v2.Insert(PhKey{3, 3}, 30);

  FaultInjector inj;
  SetFaultInjector(&inj);
  FaultyVfs vfs;
  {
    ScopedVfs scoped(&vfs);
    inj.ArmCountdown(FaultSite::kVfsRename, 1);
    const Status st = SavePhTreeOr(v2, snap);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIoError);
    EXPECT_TRUE(inj.fired());
  }
  SetFaultInjector(nullptr);
  auto loaded = LoadPhTreeOr(snap);
  ASSERT_TRUE(loaded) << loaded.error().ToString();
  EXPECT_EQ(loaded->size(), v1.size());
  RemoveFile(snap);
}

}  // namespace
}  // namespace phtree
