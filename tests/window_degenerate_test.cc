// Degenerate window-query semantics, uniformly across every index variant:
// a window with min[d] > max[d] on ANY axis selects the empty set (it is
// not reordered, not clamped, never an error), and a point window
// (min == max) selects exactly the entries at that point. PhTree, PhTreeD,
// PhTreeSync, PhTreeSharded (both routing modes) and both kd-trees must
// agree byte-for-byte; CritBit1 rides along through the same harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "critbit/critbit1.h"
#include "kdtree/kdtree1.h"
#include "kdtree/kdtree2.h"
#include "phtree/phtree.h"
#include "phtree/phtree_d.h"
#include "phtree/phtree_sync.h"
#include "phtree/sharded.h"

namespace phtree {
namespace {

using EncodedEntries = std::vector<std::pair<PhKey, uint64_t>>;

/// One variant reduced to the two observables under test, with results in
/// the shared encoded key space, z-sorted for set comparison.
struct WindowVariant {
  std::string name;
  std::function<EncodedEntries(const PhKeyD&, const PhKeyD&)> query;
  std::function<size_t(const PhKeyD&, const PhKeyD&)> count;
};

void SortEntries(EncodedEntries* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const auto& a, const auto& b) {
              return ZOrderLess(a.first, b.first);
            });
}

/// The fixed 2-d point set: a 4x4 grid over negative and positive
/// coordinates (value = index), exercising the sign-crossing encoding.
std::vector<PhKeyD> TestPoints() {
  std::vector<PhKeyD> points;
  for (const double x : {-3.0, -1.0, 1.0, 3.0}) {
    for (const double y : {-3.0, -1.0, 1.0, 3.0}) {
      points.push_back({x, y});
    }
  }
  return points;
}

/// Brute-force expectation over the double points.
EncodedEntries Expect(const std::vector<PhKeyD>& points, const PhKeyD& lo,
                      const PhKeyD& hi) {
  EncodedEntries out;
  for (size_t i = 0; i < points.size(); ++i) {
    bool in = true;
    for (size_t d = 0; d < lo.size(); ++d) {
      in = in && points[i][d] >= lo[d] && points[i][d] <= hi[d];
    }
    if (in) {
      out.emplace_back(EncodeKeyD(points[i]), i);
    }
  }
  SortEntries(&out);
  return out;
}

class WindowDegenerateTest : public testing::Test {
 protected:
  WindowDegenerateTest()
      : points_(TestPoints()),
        tree_(2),
        tree_d_(2),
        sync_(2),
        sharded_z_(2, 4, ShardRouting::kZPrefix),
        sharded_h_(2, 4, ShardRouting::kHash),
        kd1_(2),
        kd2_(2),
        cb1_(2) {
    for (size_t i = 0; i < points_.size(); ++i) {
      const PhKey key = EncodeKeyD(points_[i]);
      tree_.Insert(key, i);
      tree_d_.Insert(points_[i], i);
      sync_.Insert(key, i);
      sharded_z_.Insert(key, i);
      sharded_h_.Insert(key, i);
      kd1_.Insert(points_[i], i);
      kd2_.Insert(points_[i], i);
      cb1_.Insert(points_[i], i);
    }

    const auto add = [this](std::string name, auto query, auto count) {
      variants_.push_back(
          WindowVariant{std::move(name), std::move(query), std::move(count)});
    };
    add("PhTree",
        [this](const PhKeyD& lo, const PhKeyD& hi) {
          EncodedEntries out =
              tree_.QueryWindow(EncodeKeyD(lo), EncodeKeyD(hi));
          SortEntries(&out);
          return out;
        },
        [this](const PhKeyD& lo, const PhKeyD& hi) {
          return tree_.CountWindow(EncodeKeyD(lo), EncodeKeyD(hi));
        });
    add("PhTreeD",
        [this](const PhKeyD& lo, const PhKeyD& hi) {
          EncodedEntries out;
          for (const auto& [key, value] : tree_d_.QueryWindow(lo, hi)) {
            out.emplace_back(EncodeKeyD(key), value);
          }
          SortEntries(&out);
          return out;
        },
        [this](const PhKeyD& lo, const PhKeyD& hi) {
          return tree_d_.CountWindow(lo, hi);
        });
    add("PhTreeSync",
        [this](const PhKeyD& lo, const PhKeyD& hi) {
          EncodedEntries out =
              sync_.QueryWindow(EncodeKeyD(lo), EncodeKeyD(hi));
          SortEntries(&out);
          return out;
        },
        [this](const PhKeyD& lo, const PhKeyD& hi) {
          return sync_.CountWindow(EncodeKeyD(lo), EncodeKeyD(hi));
        });
    for (PhTreeSharded* sharded : {&sharded_z_, &sharded_h_}) {
      add(sharded == &sharded_z_ ? "PhTreeSharded/z" : "PhTreeSharded/h",
          [sharded](const PhKeyD& lo, const PhKeyD& hi) {
            EncodedEntries out =
                sharded->QueryWindow(EncodeKeyD(lo), EncodeKeyD(hi));
            SortEntries(&out);
            return out;
          },
          [sharded](const PhKeyD& lo, const PhKeyD& hi) {
            return sharded->CountWindow(EncodeKeyD(lo), EncodeKeyD(hi));
          });
    }
    const auto add_baseline = [&add](std::string name, auto* tree) {
      add(std::move(name),
          [tree](const PhKeyD& lo, const PhKeyD& hi) {
            EncodedEntries out;
            tree->QueryWindow(
                lo, hi, [&out](std::span<const double> key, uint64_t value) {
                  out.emplace_back(EncodeKeyD(key), value);
                });
            SortEntries(&out);
            return out;
          },
          [tree](const PhKeyD& lo, const PhKeyD& hi) {
            return tree->CountWindow(lo, hi);
          });
    };
    add_baseline("KD1", &kd1_);
    add_baseline("KD2", &kd2_);
    add_baseline("CB1", &cb1_);
  }

  void ExpectWindow(const PhKeyD& lo, const PhKeyD& hi) {
    const EncodedEntries expect = Expect(points_, lo, hi);
    for (const WindowVariant& v : variants_) {
      EXPECT_EQ(v.query(lo, hi), expect) << v.name << " window result";
      EXPECT_EQ(v.count(lo, hi), expect.size()) << v.name << " count";
    }
  }

  std::vector<PhKeyD> points_;
  PhTree tree_;
  PhTreeD tree_d_;
  PhTreeSync sync_;
  PhTreeSharded sharded_z_;
  PhTreeSharded sharded_h_;
  KdTree1 kd1_;
  KdTree2 kd2_;
  CritBit1 cb1_;
  std::vector<WindowVariant> variants_;
};

TEST_F(WindowDegenerateTest, MinAboveMaxOnOneAxisIsEmpty) {
  ExpectWindow({3.0, -3.0}, {-3.0, 3.0});  // x inverted
  ExpectWindow({-3.0, 3.0}, {3.0, -3.0});  // y inverted
  // Inverted by the smallest possible margin around an existing point.
  ExpectWindow({1.0 + 1e-9, -3.0}, {1.0, 3.0});
}

TEST_F(WindowDegenerateTest, MinAboveMaxOnAllAxesIsEmpty) {
  ExpectWindow({3.0, 3.0}, {-3.0, -3.0});
}

TEST_F(WindowDegenerateTest, DegenerateWindowOnEmptyTreesIsEmpty) {
  // Fresh empty variants: same contract with no data at all.
  PhTree tree(2);
  EXPECT_TRUE(tree.QueryWindow(EncodeKeyD(PhKeyD{1.0, 1.0}),
                               EncodeKeyD(PhKeyD{-1.0, -1.0}))
                  .empty());
  KdTree1 kd(2);
  EXPECT_EQ(kd.CountWindow(PhKeyD{1.0, 1.0}, PhKeyD{-1.0, -1.0}), 0u);
}

TEST_F(WindowDegenerateTest, PointWindowSelectsExactlyThatPoint) {
  for (const PhKeyD& p : TestPoints()) {
    ExpectWindow(p, p);
  }
}

TEST_F(WindowDegenerateTest, PointWindowOnAbsentPointIsEmpty) {
  ExpectWindow({0.0, 0.0}, {0.0, 0.0});
  ExpectWindow({-2.0, 2.0}, {-2.0, 2.0});
}

TEST_F(WindowDegenerateTest, RegularWindowsStillAgree) {
  ExpectWindow({-3.0, -3.0}, {3.0, 3.0});   // everything
  ExpectWindow({-1.0, -1.0}, {3.0, 1.0});   // partial box
  ExpectWindow({-100.0, -100.0}, {100.0, 100.0});
}

}  // namespace
}  // namespace phtree
