#include "benchlib/workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "benchlib/json_artifact.h"
#include "common/rng.h"
#include "datasets/datasets.h"
#include "phtree/phtree.h"
#include "phtree/phtree_d.h"
#include "phtree/validate.h"

namespace phtree::bench {
namespace {

TEST(PointQueries, RoughlyHalfHitExistingPoints) {
  const Dataset ds = GenerateCube(20000, 3, 1);
  const auto queries = MakePointQueries(ds, 10000, 7);
  ASSERT_EQ(queries.size(), 10000u);
  size_t hits = 0;
  // Existing points are copied verbatim; random misses almost surely do not
  // collide, so exact-match counting approximates the hit fraction.
  std::set<std::vector<double>> points;
  for (size_t i = 0; i < ds.n(); ++i) {
    const auto p = ds.point(i);
    points.insert(std::vector<double>(p.begin(), p.end()));
  }
  for (const auto& q : queries) {
    hits += points.count(q);
  }
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.5, 0.03);
}

TEST(PointQueries, StayWithinDataBounds) {
  const Dataset ds = GenerateTigerLike(5000, 2);
  const auto queries = MakePointQueries(ds, 2000, 9);
  for (const auto& q : queries) {
    EXPECT_GE(q[0], -125.0);
    EXPECT_LE(q[0], -65.0);
    EXPECT_GE(q[1], 24.0);
    EXPECT_LE(q[1], 50.0);
  }
}

TEST(VolumeQueries, CoverRequestedFraction) {
  const Dataset ds = GenerateCube(5000, 3, 2);
  for (const double coverage : {0.001, 0.01, 0.1}) {
    const auto boxes = MakeVolumeQueries(ds, 300, coverage, 11);
    double sum = 0;
    for (const auto& b : boxes) {
      double vol = 1.0;
      for (int d = 0; d < 3; ++d) {
        EXPECT_LE(b.lo[d], b.hi[d]);
        vol *= (b.hi[d] - b.lo[d]);
      }
      sum += vol;
    }
    // Domain is ~[0,1]^3; average box volume must match the coverage.
    EXPECT_NEAR(sum / 300.0, coverage, coverage * 0.25);
  }
}

TEST(VolumeQueries, EdgesHaveRandomLengths) {
  const Dataset ds = GenerateCube(5000, 2, 2);
  const auto boxes = MakeVolumeQueries(ds, 200, 0.01, 13);
  // The boxes must not all be squares: the paper adjusts exactly one edge.
  size_t non_square = 0;
  for (const auto& b : boxes) {
    const double w = b.hi[0] - b.lo[0];
    const double h = b.hi[1] - b.lo[1];
    if (std::abs(w - h) > 1e-6) {
      ++non_square;
    }
  }
  EXPECT_GT(non_square, 150u);
}

TEST(ClusterQueries, MatchPaperShape) {
  const auto boxes = MakeClusterQueries(5, 100, 17);
  for (const auto& b : boxes) {
    // Full extent in every dimension but x.
    for (int d = 1; d < 5; ++d) {
      EXPECT_EQ(b.lo[d], 0.0);
      EXPECT_EQ(b.hi[d], 1.0);
    }
    // x: length 0.0001, located in [0, 0.1].
    EXPECT_NEAR(b.hi[0] - b.lo[0], 0.0001, 1e-12);
    EXPECT_GE(b.lo[0], 0.0);
    EXPECT_LE(b.lo[0], 0.1);
  }
}

TEST(JsonArtifact, RerunReplacesOwnSectionInsteadOfDuplicating) {
  // Regression: the section splice used the wrong nesting depth when
  // looking for an existing section, so re-running a bench appended a
  // duplicate key instead of replacing its previous run (JSON parsers then
  // silently kept the stale copy).
  const std::string path =
      (std::filesystem::temp_directory_path() / "phtree_artifact_test.json")
          .string();
  std::error_code ec;
  std::filesystem::remove(path, ec);
  ASSERT_TRUE(UpdateJsonArtifact(path, "t", "alpha", "{\"v\": 1}"));
  ASSERT_TRUE(UpdateJsonArtifact(path, "t", "beta", "{\"v\": 2}"));
  ASSERT_TRUE(UpdateJsonArtifact(path, "t", "alpha", "{\"v\": 3}"));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string contents = buf.str();
  std::filesystem::remove(path, ec);
  size_t count = 0;
  for (size_t pos = contents.find("\"alpha\""); pos != std::string::npos;
       pos = contents.find("\"alpha\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u) << contents;
  EXPECT_NE(contents.find("\"v\": 3"), std::string::npos) << contents;
  EXPECT_EQ(contents.find("\"v\": 1"), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"beta\""), std::string::npos) << contents;
}

TEST(Workloads, DeterministicInSeed) {
  const Dataset ds = GenerateCube(1000, 3, 3);
  const auto a = MakeVolumeQueries(ds, 50, 0.01, 5);
  const auto b = MakeVolumeQueries(ds, 50, 0.01, 5);
  const auto c = MakeVolumeQueries(ds, 50, 0.01, 6);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lo, b[i].lo);
    EXPECT_EQ(a[i].hi, b[i].hi);
  }
  EXPECT_NE(a[0].lo, c[0].lo);
}

// ---- Churn & skew scenarios ---------------------------------------------

TEST(Zipf, ProbabilitiesMatchTheLaw) {
  const size_t n = 1000;
  const double s = 1.1;
  ZipfSampler zipf(n, s, 1);
  // P(k) ∝ 1/(k+1)^s: every adjacent-rank probability ratio equals the
  // law's, and the distribution sums to one.
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += zipf.Probability(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (size_t k = 0; k + 1 < 20; ++k) {
    const double want = std::pow(static_cast<double>(k + 2), s) /
                        std::pow(static_cast<double>(k + 1), s);
    EXPECT_NEAR(zipf.Probability(k) / zipf.Probability(k + 1), want, 1e-9)
        << "rank " << k;
  }
}

TEST(Zipf, EmpiricalRankFrequencySlope) {
  // log(freq) vs log(rank+1) regresses to slope ~ -s over the head ranks.
  const size_t n = 10000;
  const double s = 1.2;
  ZipfSampler zipf(n, s, 99);
  std::vector<size_t> counts(n, 0);
  const size_t draws = 200000;
  for (size_t i = 0; i < draws; ++i) {
    ++counts[zipf.Next()];
  }
  // Head ranks get enough mass for a stable fit.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  size_t m = 0;
  for (size_t k = 0; k < 50; ++k) {
    if (counts[k] == 0) {
      continue;
    }
    const double x = std::log(static_cast<double>(k + 1));
    const double y = std::log(static_cast<double>(counts[k]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++m;
  }
  ASSERT_GT(m, 30u);
  const double slope =
      (static_cast<double>(m) * sxy - sx * sy) /
      (static_cast<double>(m) * sxx - sx * sx);
  EXPECT_NEAR(slope, -s, 0.1);
}

TEST(Zipf, DeterministicInSeed) {
  ZipfSampler a(100, 1.0, 5);
  ZipfSampler b(100, 1.0, 5);
  ZipfSampler c(100, 1.0, 6);
  bool differs = false;
  for (int i = 0; i < 200; ++i) {
    const size_t ra = a.Next();
    EXPECT_EQ(ra, b.Next());
    differs |= ra != c.Next();
  }
  EXPECT_TRUE(differs);
}

TEST(MovingObjects, ExactMoverCountAndBounds) {
  MovingObjectsConfig config;
  config.dim = 3;
  config.n_objects = 500;
  config.move_fraction = 0.2;
  config.sigma = 0.05;
  MovingObjectsWorkload workload(config, 21);
  for (int tick = 0; tick < 5; ++tick) {
    const auto moves = workload.Tick();
    // Partial Fisher-Yates: exactly floor(0.2 * 500) distinct objects.
    ASSERT_EQ(moves.size(), 100u);
    std::set<size_t> objects;
    for (const auto& m : moves) {
      EXPECT_TRUE(objects.insert(m.object).second) << "duplicate mover";
      ASSERT_EQ(m.to.size(), 3u);
      for (uint32_t d = 0; d < 3; ++d) {
        EXPECT_GE(m.to[d], config.lo);
        EXPECT_LE(m.to[d], config.hi);
        // The workload's own position table advances with the move.
        EXPECT_EQ(workload.positions()[m.object][d], m.to[d]);
      }
    }
  }
}

TEST(MovingObjects, DisplacementMatchesSigma) {
  MovingObjectsConfig config;
  config.dim = 2;
  config.n_objects = 2000;
  config.move_fraction = 1.0;
  config.sigma = 0.01;
  MovingObjectsWorkload workload(config, 33);
  double sum = 0.0, sum2 = 0.0;
  size_t samples = 0;
  for (int tick = 0; tick < 10; ++tick) {
    for (const auto& m : workload.Tick()) {
      for (uint32_t d = 0; d < 2; ++d) {
        const double step = m.to[d] - m.from[d];
        sum += step;
        sum2 += step * step;
        ++samples;
      }
    }
  }
  const double mean = sum / static_cast<double>(samples);
  const double stddev =
      std::sqrt(sum2 / static_cast<double>(samples) - mean * mean);
  // Gaussian steps: zero-mean, sigma-scaled (clamping at the domain edge
  // is negligible for sigma = 0.01 on a unit box).
  EXPECT_NEAR(mean, 0.0, 0.001);
  EXPECT_NEAR(stddev, config.sigma, config.sigma * 0.1);
}

TEST(MovingObjects, DeterministicInSeed) {
  MovingObjectsConfig config;
  config.n_objects = 50;
  config.move_fraction = 0.5;
  MovingObjectsWorkload a(config, 4);
  MovingObjectsWorkload b(config, 4);
  for (int tick = 0; tick < 3; ++tick) {
    const auto ma = a.Tick();
    const auto mb = b.Tick();
    ASSERT_EQ(ma.size(), mb.size());
    for (size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma[i].object, mb[i].object);
      EXPECT_EQ(ma[i].to, mb[i].to);
    }
  }
}

TEST(SkewedQueries, HeadConcentratesNearHotCenters) {
  // Queries are drawn Zipf over a nearest-hot-center distance ranking, so
  // a handful of distinct points must dominate the sample.
  std::vector<std::vector<double>> points;
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    points.push_back({rng.NextDouble(), rng.NextDouble()});
  }
  const auto queries = MakeSkewedPointQueries(points, 20000, 1.1, 4, 17);
  ASSERT_EQ(queries.size(), 20000u);
  std::map<std::vector<double>, size_t> freq;
  for (const auto& q : queries) {
    ++freq[q];
  }
  std::vector<size_t> counts;
  for (const auto& [q, c] : freq) {
    counts.push_back(c);
  }
  std::sort(counts.rbegin(), counts.rend());
  size_t top10 = 0;
  for (size_t i = 0; i < 10 && i < counts.size(); ++i) {
    top10 += counts[i];
  }
  // Uniform sampling would put ~0.2% in any 10 points; the Zipf head puts
  // a double-digit share there.
  EXPECT_GT(top10, queries.size() / 10);
  // Every query is an existing point.
  std::set<std::vector<double>> index(points.begin(), points.end());
  for (const auto& q : queries) {
    EXPECT_EQ(index.count(q), 1u);
  }
}

TEST(Ttl, EpochAdvancesAndWindowTrailsByTtl) {
  TtlConfig config;
  config.space_dim = 2;
  config.inserts_per_epoch = 10;
  config.ttl = 3;
  TtlWorkload workload(config, 5);
  ASSERT_EQ(workload.key_dim(), 3u);
  std::vector<double> lo, hi;
  // No batch yet: nothing can be expired.
  EXPECT_FALSE(workload.ExpiryWindow(&lo, &hi));
  for (uint64_t e = 0; e < 6; ++e) {
    const auto batch = workload.NextBatch();
    ASSERT_EQ(batch.size(), 10u);
    EXPECT_EQ(workload.epoch(), e);
    for (const auto& key : batch) {
      ASSERT_EQ(key.size(), 3u);
      EXPECT_EQ(key[0], static_cast<double>(e));  // leading time dimension
      for (int d = 1; d < 3; ++d) {
        EXPECT_GE(key[d], config.lo);
        EXPECT_LE(key[d], config.hi);
      }
    }
    if (e < config.ttl) {
      EXPECT_FALSE(workload.ExpiryWindow(&lo, &hi));
    } else {
      ASSERT_TRUE(workload.ExpiryWindow(&lo, &hi));
      EXPECT_EQ(lo[0], 0.0);
      EXPECT_EQ(hi[0], static_cast<double>(e - config.ttl));
      for (int d = 1; d < 3; ++d) {
        EXPECT_EQ(lo[d], config.lo);
        EXPECT_EQ(hi[d], config.hi);
      }
    }
  }
}

// End-to-end churn: drive a PH-tree with the moving-objects workload
// through Update and run the deep structural validator after every tick —
// the bench scenario's integrity argument in tier-1 form.
TEST(ChurnIntegration, TreeStaysValidUnderMovingObjects) {
  MovingObjectsConfig config;
  config.dim = 2;
  config.n_objects = 400;
  config.move_fraction = 0.25;
  config.sigma = 0.002;
  MovingObjectsWorkload workload(config, 77);
  PhTree tree(config.dim);
  std::vector<PhKey> keys;
  for (size_t i = 0; i < config.n_objects; ++i) {
    PhKey key = EncodeKeyD(workload.positions()[i]);
    // Collisions under the double grid are possible; track the live key.
    tree.InsertOrAssign(key, i);
    keys.push_back(std::move(key));
  }
  for (int tick = 0; tick < 12; ++tick) {
    size_t applied = 0;
    for (const auto& m : workload.Tick()) {
      const PhKey to = EncodeKeyD(m.to);
      const UpdateOutcome out = tree.Update(keys[m.object], to);
      if (out == UpdateOutcome::kMoved) {
        keys[m.object] = to;
        ++applied;
      } else {
        // Collided with another object's live key (or this object lost its
        // slot to a collision earlier); both leave the tree unchanged.
        ASSERT_TRUE(out == UpdateOutcome::kNewOccupied ||
                    out == UpdateOutcome::kOldMissing)
            << UpdateOutcomeName(out);
      }
    }
    EXPECT_GT(applied, 0u);
    ASSERT_EQ(ValidatePhTreeDeep(tree), "") << "tick " << tick;
  }
  const PhUpdateStats& stats = tree.update_stats();
  EXPECT_GT(stats.fast_path, 0u);
}

}  // namespace
}  // namespace phtree::bench
