#include "benchlib/workloads.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "benchlib/json_artifact.h"
#include "datasets/datasets.h"

namespace phtree::bench {
namespace {

TEST(PointQueries, RoughlyHalfHitExistingPoints) {
  const Dataset ds = GenerateCube(20000, 3, 1);
  const auto queries = MakePointQueries(ds, 10000, 7);
  ASSERT_EQ(queries.size(), 10000u);
  size_t hits = 0;
  // Existing points are copied verbatim; random misses almost surely do not
  // collide, so exact-match counting approximates the hit fraction.
  std::set<std::vector<double>> points;
  for (size_t i = 0; i < ds.n(); ++i) {
    const auto p = ds.point(i);
    points.insert(std::vector<double>(p.begin(), p.end()));
  }
  for (const auto& q : queries) {
    hits += points.count(q);
  }
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.5, 0.03);
}

TEST(PointQueries, StayWithinDataBounds) {
  const Dataset ds = GenerateTigerLike(5000, 2);
  const auto queries = MakePointQueries(ds, 2000, 9);
  for (const auto& q : queries) {
    EXPECT_GE(q[0], -125.0);
    EXPECT_LE(q[0], -65.0);
    EXPECT_GE(q[1], 24.0);
    EXPECT_LE(q[1], 50.0);
  }
}

TEST(VolumeQueries, CoverRequestedFraction) {
  const Dataset ds = GenerateCube(5000, 3, 2);
  for (const double coverage : {0.001, 0.01, 0.1}) {
    const auto boxes = MakeVolumeQueries(ds, 300, coverage, 11);
    double sum = 0;
    for (const auto& b : boxes) {
      double vol = 1.0;
      for (int d = 0; d < 3; ++d) {
        EXPECT_LE(b.lo[d], b.hi[d]);
        vol *= (b.hi[d] - b.lo[d]);
      }
      sum += vol;
    }
    // Domain is ~[0,1]^3; average box volume must match the coverage.
    EXPECT_NEAR(sum / 300.0, coverage, coverage * 0.25);
  }
}

TEST(VolumeQueries, EdgesHaveRandomLengths) {
  const Dataset ds = GenerateCube(5000, 2, 2);
  const auto boxes = MakeVolumeQueries(ds, 200, 0.01, 13);
  // The boxes must not all be squares: the paper adjusts exactly one edge.
  size_t non_square = 0;
  for (const auto& b : boxes) {
    const double w = b.hi[0] - b.lo[0];
    const double h = b.hi[1] - b.lo[1];
    if (std::abs(w - h) > 1e-6) {
      ++non_square;
    }
  }
  EXPECT_GT(non_square, 150u);
}

TEST(ClusterQueries, MatchPaperShape) {
  const auto boxes = MakeClusterQueries(5, 100, 17);
  for (const auto& b : boxes) {
    // Full extent in every dimension but x.
    for (int d = 1; d < 5; ++d) {
      EXPECT_EQ(b.lo[d], 0.0);
      EXPECT_EQ(b.hi[d], 1.0);
    }
    // x: length 0.0001, located in [0, 0.1].
    EXPECT_NEAR(b.hi[0] - b.lo[0], 0.0001, 1e-12);
    EXPECT_GE(b.lo[0], 0.0);
    EXPECT_LE(b.lo[0], 0.1);
  }
}

TEST(JsonArtifact, RerunReplacesOwnSectionInsteadOfDuplicating) {
  // Regression: the section splice used the wrong nesting depth when
  // looking for an existing section, so re-running a bench appended a
  // duplicate key instead of replacing its previous run (JSON parsers then
  // silently kept the stale copy).
  const std::string path =
      (std::filesystem::temp_directory_path() / "phtree_artifact_test.json")
          .string();
  std::error_code ec;
  std::filesystem::remove(path, ec);
  ASSERT_TRUE(UpdateJsonArtifact(path, "t", "alpha", "{\"v\": 1}"));
  ASSERT_TRUE(UpdateJsonArtifact(path, "t", "beta", "{\"v\": 2}"));
  ASSERT_TRUE(UpdateJsonArtifact(path, "t", "alpha", "{\"v\": 3}"));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string contents = buf.str();
  std::filesystem::remove(path, ec);
  size_t count = 0;
  for (size_t pos = contents.find("\"alpha\""); pos != std::string::npos;
       pos = contents.find("\"alpha\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u) << contents;
  EXPECT_NE(contents.find("\"v\": 3"), std::string::npos) << contents;
  EXPECT_EQ(contents.find("\"v\": 1"), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"beta\""), std::string::npos) << contents;
}

TEST(Workloads, DeterministicInSeed) {
  const Dataset ds = GenerateCube(1000, 3, 3);
  const auto a = MakeVolumeQueries(ds, 50, 0.01, 5);
  const auto b = MakeVolumeQueries(ds, 50, 0.01, 5);
  const auto c = MakeVolumeQueries(ds, 50, 0.01, 6);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lo, b[i].lo);
    EXPECT_EQ(a[i].hi, b[i].hi);
  }
  EXPECT_NE(a[0].lo, c[0].lo);
}

}  // namespace
}  // namespace phtree::bench
