#!/usr/bin/env python3
"""CI gate for the BENCH_churn.json artefact.

Validates that the file churn_throughput wrote is well-formed and sane:

  * parses as JSON with "bench": "churn" and all three expected sections
    (moving_objects, zipf_queries, ttl_eviction),
  * every section carries the run-metadata stamp (cores/build_type/
    git_sha/scale),
  * every row has the required fields with positive n and a positive,
    finite timing value,
  * the moving_objects section has both the update and erase_insert arms
    for every dataset, the zipf_queries section has both the zipf and
    uniform arms, and the ttl_eviction section has the sweep rows,
  * on near-full-scale runs (metadata scale >= 0.25), the performance gate
    holds: on every "nearby" moving-objects dataset the Update arm beats
    the erase+insert composite by >= 1.2x (per-arm minima) — the in-place
    postfix relocation must actually pay for itself. Scaled-down CI runs
    check the schema only (tiny trees are too shallow for the fast path to
    dominate and too noisy to gate).

Exit code 0 on success; 1 with a diagnostic on the first violation.
"""

import json
import math
import sys

REQUIRED_SECTIONS = {
    "moving_objects": "us_per_move",
    "zipf_queries": "us_per_query",
    "ttl_eviction": "us_per_op",
}
METADATA_KEYS = ("cores", "build_type", "git_sha", "scale")
MOVE_MODES = {"update", "erase_insert"}
ZIPF_MODES = {"zipf", "uniform"}

# The ratio gate only runs on trustworthy artefacts: near-full-scale runs
# where the trees are deep enough for nearby moves to stay inside one node.
MIN_GATED_SCALE = 0.25
UPDATE_SPEEDUP = 1.2


def fail(msg):
    print(f"check_bench_churn: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_rows(section, rows, value_key):
    if not isinstance(rows, list) or not rows:
        fail(f"section {section}: empty or non-list rows")
    for i, row in enumerate(rows):
        for key in ("dataset", "struct", "n", value_key):
            if key not in row:
                fail(f"section {section} row {i}: missing {key!r}")
        if not isinstance(row["n"], int) or row["n"] <= 0:
            fail(f"section {section} row {i}: non-positive n {row['n']!r}")
        us = row[value_key]
        if not isinstance(us, (int, float)) or not math.isfinite(us) or us <= 0:
            fail(
                f"section {section} row {i}: {value_key} {us!r} is not a "
                "positive finite number"
            )


def min_by(rows, value_key, mode, dataset):
    vals = [
        r[value_key]
        for r in rows
        if r["struct"] == mode and r["dataset"] == dataset
    ]
    return min(vals) if vals else None


def check_moving_section(section):
    rows = section["rows"]
    for i, row in enumerate(rows):
        if row["struct"] not in MOVE_MODES:
            fail(f"moving_objects row {i}: bad mode {row['struct']!r}")
    for dataset in sorted({r["dataset"] for r in rows}):
        modes = {r["struct"] for r in rows if r["dataset"] == dataset}
        if not MOVE_MODES <= modes:
            fail(
                f"moving_objects {dataset}: missing arms "
                f"{sorted(MOVE_MODES - modes)}"
            )


def check_zipf_section(section):
    rows = section["rows"]
    for i, row in enumerate(rows):
        if row["struct"] not in ZIPF_MODES:
            fail(f"zipf_queries row {i}: bad mode {row['struct']!r}")
    modes = {r["struct"] for r in rows}
    if not ZIPF_MODES <= modes:
        fail(f"zipf_queries missing arms {sorted(ZIPF_MODES - modes)}")


def check_update_gates(section):
    rows = section["rows"]
    nearby = sorted(
        d for d in {r["dataset"] for r in rows} if "nearby" in d
    )
    if not nearby:
        fail("moving_objects: no 'nearby' dataset to gate")
    for dataset in nearby:
        composite = min_by(rows, "us_per_move", "erase_insert", dataset)
        update = min_by(rows, "us_per_move", "update", dataset)
        if composite is None or update is None:
            fail(f"update gate: {dataset}: missing an arm")
        if update > composite / UPDATE_SPEEDUP:
            fail(
                f"update gate: {dataset}: update {update:.3f} us/move is "
                f"not {UPDATE_SPEEDUP}x faster than erase+insert "
                f"{composite:.3f}"
            )


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_churn.json"
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if doc.get("bench") != "churn":
        fail(f"top-level bench is {doc.get('bench')!r}, expected 'churn'")
    sections = doc.get("sections")
    if not isinstance(sections, dict):
        fail("missing or non-object 'sections'")

    for name, value_key in REQUIRED_SECTIONS.items():
        section = sections.get(name)
        if not isinstance(section, dict):
            fail(f"missing section {name!r}")
        metadata = section.get("metadata")
        if not isinstance(metadata, dict):
            fail(f"section {name}: missing metadata stamp")
        for key in METADATA_KEYS:
            if key not in metadata:
                fail(f"section {name}: metadata missing {key!r}")
        check_rows(name, section.get("rows"), value_key)

    moving = sections["moving_objects"]
    check_moving_section(moving)
    check_zipf_section(sections["zipf_queries"])

    if moving["metadata"].get("scale", 0) >= MIN_GATED_SCALE:
        check_update_gates(moving)
        gates = "update gate enforced"
    else:
        gates = "update gate skipped (scaled-down run)"

    print(
        f"check_bench_churn: OK ({path}: "
        f"{len(moving['rows'])} moving-objects rows, "
        f"{len(sections['zipf_queries']['rows'])} zipf rows, "
        f"{len(sections['ttl_eviction']['rows'])} ttl rows, {gates})"
    )


if __name__ == "__main__":
    main()
