#!/usr/bin/env python3
"""CI gate for the BENCH_concurrency.json artefact.

Validates that the file concurrency_scaling wrote is well-formed and sane:

  * parses as JSON with "bench": "concurrency_scaling", a run-metadata
    stamp (cores/build_type/git_sha/scale), an explicit boolean
    "scaling_valid" verdict, and a workload block,
  * every row has the required fields with positive finite ops/us and a
    known index/op combination,
  * the expected arms are present: the plain single-thread insert
    baseline, sync and sharded insert sweeps, sharded bulk_load, the
    window_query fan-outs, and — the MVCC arm — read_under_writer rows
    for both PH(sync) (epoch-guarded lock-free reads) and PH(rwlock)
    (the retired shared_mutex baseline) at every measured reader count,
  * the reader-scaling gate: on artefacts whose producer could actually
    observe parallelism ("scaling_valid": true, i.e. > 1 core), epoch
    reads at t* readers (the largest measured count <= cores) must beat
    one reader by >= 1.3x, and must at least match the rwlock arm at the
    same t*. When "scaling_valid" is false or the stamp says one core,
    every multi-thread number is time-slicing, so the gate self-skips
    and only the schema is enforced.

Exit code 0 on success; 1 with a diagnostic on the first violation.
"""

import json
import math
import sys

METADATA_KEYS = ("cores", "build_type", "git_sha", "scale")
ROW_KEYS = ("index", "op", "threads", "shards", "ops", "us",
            "mops_per_sec", "us_per_op")
KNOWN_INDEXES = {"PH(plain)", "PH(sync)", "PH(sharded)", "PH(rwlock)"}
KNOWN_OPS = {"insert", "bulk_load", "window_query", "read_under_writer"}

READ_SCALING_MIN = 1.3   # epoch reads, t* readers vs 1 (t* <= cores)
EPOCH_VS_RWLOCK_MIN = 1.0  # epoch must at least match the lock at t*


def fail(msg):
    print(f"check_bench_concurrency: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_rows(rows):
    if not isinstance(rows, list) or not rows:
        fail("empty or non-list 'rows'")
    for i, row in enumerate(rows):
        for key in ROW_KEYS:
            if key not in row:
                fail(f"row {i}: missing {key!r}")
        if row["index"] not in KNOWN_INDEXES:
            fail(f"row {i}: unknown index {row['index']!r}")
        if row["op"] not in KNOWN_OPS:
            fail(f"row {i}: unknown op {row['op']!r}")
        if not isinstance(row["threads"], int) or row["threads"] <= 0:
            fail(f"row {i}: non-positive threads {row['threads']!r}")
        for key in ("ops", "us"):
            v = row[key]
            if (not isinstance(v, (int, float)) or not math.isfinite(v)
                    or v <= 0):
                fail(f"row {i}: {key} {v!r} is not a positive finite number")


def rows_of(rows, index, op):
    return [r for r in rows if r["index"] == index and r["op"] == op]


def check_arms(rows):
    if not rows_of(rows, "PH(plain)", "insert"):
        fail("missing PH(plain) insert baseline row")
    for index, op in (("PH(sync)", "insert"), ("PH(sharded)", "insert"),
                      ("PH(sharded)", "bulk_load"),
                      ("PH(sync)", "window_query"),
                      ("PH(sharded)", "window_query")):
        if not rows_of(rows, index, op):
            fail(f"missing {index} {op} rows")
    epoch = rows_of(rows, "PH(sync)", "read_under_writer")
    rwlock = rows_of(rows, "PH(rwlock)", "read_under_writer")
    if not epoch or not rwlock:
        fail("missing the read_under_writer MVCC arm "
             "(need both PH(sync) and PH(rwlock) rows)")
    epoch_t = {r["threads"] for r in epoch}
    rwlock_t = {r["threads"] for r in rwlock}
    if epoch_t != rwlock_t:
        fail("read_under_writer arms measure different reader counts: "
             f"epoch {sorted(epoch_t)} vs rwlock {sorted(rwlock_t)}")
    if 1 not in epoch_t:
        fail("read_under_writer arm has no 1-reader row to scale against")
    return epoch, rwlock


def mops(rows, threads):
    vals = [r["mops_per_sec"] for r in rows if r["threads"] == threads]
    if not vals:
        fail(f"no read_under_writer row at {threads} readers")
    return max(vals)


def check_reader_scaling(epoch, rwlock, cores):
    # Gate at the largest reader count the machine could genuinely run in
    # parallel; higher counts measure oversubscription, not the read path.
    counts = sorted(r["threads"] for r in epoch)
    gated = [t for t in counts if t <= cores and t > 1]
    if not gated:
        return f"reader gate skipped (no measured count in (1, {cores}])"
    t_star = gated[-1]
    base = mops(epoch, 1)
    at_t = mops(epoch, t_star)
    if at_t < base * READ_SCALING_MIN:
        fail(
            f"reader-scaling gate: epoch reads at {t_star} readers "
            f"({at_t:.4f} Mops/s) are not {READ_SCALING_MIN}x the 1-reader "
            f"throughput ({base:.4f} Mops/s) despite {cores} cores"
        )
    lock_at_t = mops(rwlock, t_star)
    if at_t < lock_at_t * EPOCH_VS_RWLOCK_MIN:
        fail(
            f"reader-scaling gate: epoch reads at {t_star} readers "
            f"({at_t:.4f} Mops/s) fall below the rwlock baseline "
            f"({lock_at_t:.4f} Mops/s) — lock-free reads must not lose "
            "to the lock they replaced"
        )
    return (f"reader gate enforced at {t_star} readers "
            f"(scaling {at_t / base:.2f}x, vs rwlock "
            f"{at_t / lock_at_t:.2f}x)")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_concurrency.json"
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if doc.get("bench") != "concurrency_scaling":
        fail(f"top-level bench is {doc.get('bench')!r}, "
             "expected 'concurrency_scaling'")
    metadata = doc.get("metadata")
    if not isinstance(metadata, dict):
        fail("missing metadata stamp")
    for key in METADATA_KEYS:
        if key not in metadata:
            fail(f"metadata missing {key!r}")
    if not isinstance(doc.get("scaling_valid"), bool):
        fail("missing or non-boolean 'scaling_valid'")
    if not isinstance(doc.get("workload"), dict):
        fail("missing 'workload' block")
    if not isinstance(doc.get("derived"), dict):
        fail("missing 'derived' block")

    rows = doc.get("rows")
    check_rows(rows)
    epoch, rwlock = check_arms(rows)

    cores = metadata.get("cores")
    if not isinstance(cores, int) or cores <= 0:
        fail(f"metadata cores {cores!r} is not a positive integer")
    if not doc["scaling_valid"] or cores == 1:
        gates = ("reader gate skipped (scaling_valid false or single core: "
                 "multi-thread rows measure time-slicing)")
    else:
        gates = check_reader_scaling(epoch, rwlock, cores)

    print(
        f"check_bench_concurrency: OK ({path}: {len(rows)} rows, "
        f"{len(epoch)} epoch + {len(rwlock)} rwlock read arms, {gates})"
    )


if __name__ == "__main__":
    main()
