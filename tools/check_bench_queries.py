#!/usr/bin/env python3
"""CI gate for the BENCH_queries.json artefact.

Validates that the file fig08_point_queries and fig09_range_queries wrote is
well-formed and sane:

  * parses as JSON with "bench": "queries" and both expected sections,
  * every section carries the run-metadata stamp (cores/build_type/
    git_sha/scale),
  * every row has the required fields with positive n and a positive,
    finite timing value (zero or negative throughput means the measured
    loop was optimised away or the clock misbehaved),
  * the range_queries section includes the 6D CUBE hc_ablation rows with
    both tuning modes present,
  * the batch_point_queries section (written by the batch_point_queries
    binary) has both find_loop and find_batch arms with positive batch
    sizes, and the simd_ablation section has both simd and scalar arms,
  * on full-scale runs with the SIMD kernels active (metadata scale >=
    0.25 and simd_active true), the performance gates hold: FindBatch
    beats the looped-Find arm by >= 1.3x at every batch size >= 64, at
    least one ablation workload shows a >= 10% SIMD win, and no workload
    regresses more than 2% with SIMD on. Scaled-down CI runs and
    scalar-only hosts check the schema only.

Exit code 0 on success; 1 with a diagnostic on the first violation.
"""

import json
import math
import sys

REQUIRED_SECTIONS = {
    "point_queries": "us_per_query",
    "range_queries": "us_per_result",
    "batch_point_queries": "us_per_key",
    "simd_ablation": "us_per_op",
}
METADATA_KEYS = ("cores", "build_type", "git_sha", "scale")
ABLATION_MODES = {"hc_successor_skip", "hc_probe_loop"}
BATCH_MODES = {"find_loop", "find_batch"}
SIMD_MODES = {"simd", "scalar"}

# Ratio gates only run on trustworthy artefacts: a near-full-scale run
# (tiny trees fit in cache and invert the ratios) with vector kernels
# actually dispatched.
MIN_GATED_SCALE = 0.25
BATCH_SPEEDUP = 1.3
SIMD_WIN = 0.90
SIMD_REGRESSION = 1.02


def fail(msg):
    print(f"check_bench_queries: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_rows(section, rows, value_key):
    if not isinstance(rows, list) or not rows:
        fail(f"section {section}: empty or non-list rows")
    for i, row in enumerate(rows):
        for key in ("dataset", "struct", "n", value_key):
            if key not in row:
                fail(f"section {section} row {i}: missing {key!r}")
        if not isinstance(row["n"], int) or row["n"] <= 0:
            fail(f"section {section} row {i}: non-positive n {row['n']!r}")
        us = row[value_key]
        if not isinstance(us, (int, float)) or not math.isfinite(us) or us <= 0:
            fail(
                f"section {section} row {i}: {value_key} {us!r} is not a "
                "positive finite number"
            )


def min_by(rows, value_key, mode, dataset=None, batch=None):
    vals = [
        r[value_key]
        for r in rows
        if r["struct"] == mode
        and (dataset is None or r["dataset"] == dataset)
        and (batch is None or r.get("batch") == batch)
    ]
    return min(vals) if vals else None


def check_batch_section(section):
    rows = section["rows"]
    for i, row in enumerate(rows):
        batch = row.get("batch")
        if not isinstance(batch, int) or batch <= 0:
            fail(f"batch_point_queries row {i}: bad batch {batch!r}")
        if row["struct"] not in BATCH_MODES:
            fail(f"batch_point_queries row {i}: bad mode {row['struct']!r}")
    modes = {r["struct"] for r in rows}
    if not BATCH_MODES <= modes:
        fail(f"batch_point_queries missing arms {sorted(BATCH_MODES - modes)}")


def check_simd_section(section):
    rows = section["rows"]
    for i, row in enumerate(rows):
        if row["struct"] not in SIMD_MODES:
            fail(f"simd_ablation row {i}: bad mode {row['struct']!r}")
    modes = {r["struct"] for r in rows}
    if not SIMD_MODES <= modes:
        fail(f"simd_ablation missing arms {sorted(SIMD_MODES - modes)}")


def gates_apply(batch_section, simd_section):
    """Ratio gates need a near-full-scale run with vector kernels live."""
    for section in (batch_section, simd_section):
        if section["metadata"].get("scale", 0) < MIN_GATED_SCALE:
            return False
    return simd_section.get("simd_active") is True


def check_batch_gates(section):
    rows = section["rows"]
    datasets = sorted({r["dataset"] for r in rows})
    batches = sorted({r["batch"] for r in rows})
    for dataset in datasets:
        for batch in (b for b in batches if b >= 64):
            loop = min_by(rows, "us_per_key", "find_loop", dataset, batch)
            batched = min_by(rows, "us_per_key", "find_batch", dataset, batch)
            if loop is None or batched is None:
                fail(f"batch gate: {dataset} batch {batch}: missing an arm")
            if batched > loop / BATCH_SPEEDUP:
                fail(
                    f"batch gate: {dataset} batch {batch}: find_batch "
                    f"{batched:.3f} us/key is not {BATCH_SPEEDUP}x faster "
                    f"than find_loop {loop:.3f}"
                )


def check_simd_gates(section):
    rows = section["rows"]
    datasets = sorted({r["dataset"] for r in rows})
    best_ratio = math.inf
    for dataset in datasets:
        simd = min_by(rows, "us_per_op", "simd", dataset)
        scalar = min_by(rows, "us_per_op", "scalar", dataset)
        if simd is None or scalar is None:
            fail(f"simd gate: {dataset}: missing an arm")
        ratio = simd / scalar
        best_ratio = min(best_ratio, ratio)
        if ratio > SIMD_REGRESSION:
            fail(
                f"simd gate: {dataset}: simd arm {simd:.3f} us/op regresses "
                f"{(ratio - 1) * 100:.1f}% vs scalar {scalar:.3f} "
                f"(allowed {(SIMD_REGRESSION - 1) * 100:.0f}%)"
            )
    if best_ratio > SIMD_WIN:
        fail(
            f"simd gate: no workload shows a >= {(1 - SIMD_WIN) * 100:.0f}% "
            f"SIMD win (best ratio {best_ratio:.3f})"
        )


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_queries.json"
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if doc.get("bench") != "queries":
        fail(f"top-level bench is {doc.get('bench')!r}, expected 'queries'")
    sections = doc.get("sections")
    if not isinstance(sections, dict):
        fail("missing or non-object 'sections'")

    for name, value_key in REQUIRED_SECTIONS.items():
        section = sections.get(name)
        if not isinstance(section, dict):
            fail(f"missing section {name!r}")
        metadata = section.get("metadata")
        if not isinstance(metadata, dict):
            fail(f"section {name}: missing metadata stamp")
        for key in METADATA_KEYS:
            if key not in metadata:
                fail(f"section {name}: metadata missing {key!r}")
        check_rows(name, section.get("rows"), value_key)

    ablation = sections["range_queries"].get("hc_ablation")
    check_rows("range_queries.hc_ablation", ablation, "us_per_result")
    modes = {row["struct"] for row in ablation}
    if not ABLATION_MODES <= modes:
        fail(
            f"hc_ablation modes {sorted(modes)} missing "
            f"{sorted(ABLATION_MODES - modes)}"
        )
    skip = min(
        r["us_per_result"] for r in ablation
        if r["struct"] == "hc_successor_skip"
    )
    probe = min(
        r["us_per_result"] for r in ablation if r["struct"] == "hc_probe_loop"
    )

    batch_section = sections["batch_point_queries"]
    simd_section = sections["simd_ablation"]
    check_batch_section(batch_section)
    check_simd_section(simd_section)
    if gates_apply(batch_section, simd_section):
        check_batch_gates(batch_section)
        check_simd_gates(simd_section)
        gates = "gates enforced"
    else:
        gates = "gates skipped (scaled-down or scalar-only run)"

    print(
        f"check_bench_queries: OK ({path}: "
        f"{len(sections['point_queries']['rows'])} point rows, "
        f"{len(sections['range_queries']['rows'])} range rows, "
        f"hc ablation skip {skip:.3f} vs probe {probe:.3f} us/result, "
        f"{len(batch_section['rows'])} batch rows, "
        f"{len(simd_section['rows'])} simd-ablation rows, {gates})"
    )


if __name__ == "__main__":
    main()
