#!/usr/bin/env python3
"""CI gate for the BENCH_queries.json artefact.

Validates that the file fig08_point_queries and fig09_range_queries wrote is
well-formed and sane:

  * parses as JSON with "bench": "queries" and both expected sections,
  * every section carries the run-metadata stamp (cores/build_type/
    git_sha/scale),
  * every row has the required fields with positive n and a positive,
    finite timing value (zero or negative throughput means the measured
    loop was optimised away or the clock misbehaved),
  * the range_queries section includes the 6D CUBE hc_ablation rows with
    both tuning modes present.

Exit code 0 on success; 1 with a diagnostic on the first violation.
"""

import json
import math
import sys

REQUIRED_SECTIONS = {
    "point_queries": "us_per_query",
    "range_queries": "us_per_result",
}
METADATA_KEYS = ("cores", "build_type", "git_sha", "scale")
ABLATION_MODES = {"hc_successor_skip", "hc_probe_loop"}


def fail(msg):
    print(f"check_bench_queries: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_rows(section, rows, value_key):
    if not isinstance(rows, list) or not rows:
        fail(f"section {section}: empty or non-list rows")
    for i, row in enumerate(rows):
        for key in ("dataset", "struct", "n", value_key):
            if key not in row:
                fail(f"section {section} row {i}: missing {key!r}")
        if not isinstance(row["n"], int) or row["n"] <= 0:
            fail(f"section {section} row {i}: non-positive n {row['n']!r}")
        us = row[value_key]
        if not isinstance(us, (int, float)) or not math.isfinite(us) or us <= 0:
            fail(
                f"section {section} row {i}: {value_key} {us!r} is not a "
                "positive finite number"
            )


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_queries.json"
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if doc.get("bench") != "queries":
        fail(f"top-level bench is {doc.get('bench')!r}, expected 'queries'")
    sections = doc.get("sections")
    if not isinstance(sections, dict):
        fail("missing or non-object 'sections'")

    for name, value_key in REQUIRED_SECTIONS.items():
        section = sections.get(name)
        if not isinstance(section, dict):
            fail(f"missing section {name!r}")
        metadata = section.get("metadata")
        if not isinstance(metadata, dict):
            fail(f"section {name}: missing metadata stamp")
        for key in METADATA_KEYS:
            if key not in metadata:
                fail(f"section {name}: metadata missing {key!r}")
        check_rows(name, section.get("rows"), value_key)

    ablation = sections["range_queries"].get("hc_ablation")
    check_rows("range_queries.hc_ablation", ablation, "us_per_result")
    modes = {row["struct"] for row in ablation}
    if not ABLATION_MODES <= modes:
        fail(
            f"hc_ablation modes {sorted(modes)} missing "
            f"{sorted(ABLATION_MODES - modes)}"
        )
    skip = min(
        r["us_per_result"] for r in ablation
        if r["struct"] == "hc_successor_skip"
    )
    probe = min(
        r["us_per_result"] for r in ablation if r["struct"] == "hc_probe_loop"
    )
    print(
        f"check_bench_queries: OK ({path}: "
        f"{len(sections['point_queries']['rows'])} point rows, "
        f"{len(sections['range_queries']['rows'])} range rows, "
        f"hc ablation skip {skip:.3f} vs probe {probe:.3f} us/result)"
    )


if __name__ == "__main__":
    main()
