#!/usr/bin/env python3
"""CI gate for the BENCH_space.json artefact.

Validates that the file table1_space and table2_cluster_space wrote is
well-formed and sane:

  * parses as JSON with "bench": "space" and both expected sections,
  * every section carries the run-metadata stamp (cores/build_type/
    git_sha/scale),
  * every row has dataset/struct/n/bytes_per_entry with positive n and a
    positive, finite bytes_per_entry,
  * table1 includes the PH and PH(set) rows for every dataset, with
    PH(set) strictly below PH (key-only mode must save space) and PH below
    the pointer-based KD1/CB1 baselines (KD2/CB2 are array-backed here and
    legitimately compact, see EXPERIMENTS.md),
  * table2 covers both CLUSTER0.4 and CLUSTER0.5.

With --baseline <committed BENCH_space.json>, additionally enforces
non-regression: for every (dataset, struct) PH/PH(set) pair present in
both files, the fresh bytes_per_entry must not exceed the baseline by more
than --tolerance (default 2%). The comparison only runs when both files
were produced at the same PHTREE_BENCH_SCALE and n — bytes/entry depends
on tree size, so cross-scale comparisons would be meaningless and are
skipped with a note instead.

Exit code 0 on success; 1 with a diagnostic on the first violation.
"""

import argparse
import json
import math
import sys

REQUIRED_SECTIONS = ("table1", "table2")
METADATA_KEYS = ("cores", "build_type", "git_sha", "scale")
TABLE1_PH_STRUCTS = ("PH", "PH(set)")
TABLE1_BASELINES = ("KD1", "CB1")  # pointer-based; KD2/CB2 are array-backed
TABLE2_DATASETS = {"3D CLUSTER0.4", "3D CLUSTER0.5"}
CHECKED_STRUCTS = TABLE1_PH_STRUCTS  # structs under non-regression watch


def fail(msg):
    print(f"check_bench_space: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    if doc.get("bench") != "space":
        fail(f"{path}: top-level bench is {doc.get('bench')!r}, "
             "expected 'space'")
    sections = doc.get("sections")
    if not isinstance(sections, dict):
        fail(f"{path}: missing or non-object 'sections'")
    return sections


def check_rows(path, section, rows):
    if not isinstance(rows, list) or not rows:
        fail(f"{path} section {section}: empty or non-list rows")
    for i, row in enumerate(rows):
        for key in ("dataset", "struct", "n", "bytes_per_entry"):
            if key not in row:
                fail(f"{path} section {section} row {i}: missing {key!r}")
        if not isinstance(row["n"], int) or row["n"] <= 0:
            fail(f"{path} section {section} row {i}: "
                 f"non-positive n {row['n']!r}")
        bpe = row["bytes_per_entry"]
        if (not isinstance(bpe, (int, float)) or not math.isfinite(bpe)
                or bpe <= 0):
            fail(f"{path} section {section} row {i}: bytes_per_entry "
                 f"{bpe!r} is not a positive finite number")


def check_schema(path, sections):
    for name in REQUIRED_SECTIONS:
        section = sections.get(name)
        if not isinstance(section, dict):
            fail(f"{path}: missing section {name!r}")
        metadata = section.get("metadata")
        if not isinstance(metadata, dict):
            fail(f"{path} section {name}: missing metadata stamp")
        for key in METADATA_KEYS:
            if key not in metadata:
                fail(f"{path} section {name}: metadata missing {key!r}")
        check_rows(path, name, section.get("rows"))

    # table1: per-dataset structural sanity.
    by_dataset = {}
    for row in sections["table1"]["rows"]:
        by_dataset.setdefault(row["dataset"], {})[row["struct"]] = (
            row["bytes_per_entry"])
    for dataset, structs in sorted(by_dataset.items()):
        for want in TABLE1_PH_STRUCTS:
            if want not in structs:
                fail(f"{path} table1 {dataset}: missing {want!r} row")
        if structs["PH(set)"] >= structs["PH"]:
            fail(f"{path} table1 {dataset}: PH(set) "
                 f"{structs['PH(set)']:.2f} B/e is not below PH "
                 f"{structs['PH']:.2f} B/e")
        for base in TABLE1_BASELINES:
            if base in structs and structs["PH"] >= structs[base]:
                fail(f"{path} table1 {dataset}: PH {structs['PH']:.2f} B/e "
                     f"is not below {base} {structs[base]:.2f} B/e")

    # table2: both cluster variants present.
    t2_datasets = {row["dataset"] for row in sections["table2"]["rows"]}
    if not TABLE2_DATASETS <= t2_datasets:
        fail(f"{path} table2: datasets {sorted(t2_datasets)} missing "
             f"{sorted(TABLE2_DATASETS - t2_datasets)}")
    return by_dataset


def ph_rows(sections):
    """(section, dataset, struct, n) -> bytes_per_entry for watched structs."""
    out = {}
    for name in REQUIRED_SECTIONS:
        for row in sections[name]["rows"]:
            if row["struct"] in CHECKED_STRUCTS:
                out[(name, row["dataset"], row["struct"], row["n"])] = (
                    row["bytes_per_entry"])
    return out


def check_regression(fresh_path, fresh, base_path, base, tolerance):
    fresh_scales = {fresh[s]["metadata"].get("scale")
                    for s in REQUIRED_SECTIONS}
    base_scales = {base[s]["metadata"].get("scale")
                   for s in REQUIRED_SECTIONS}
    if fresh_scales != base_scales:
        print(f"check_bench_space: note: scale mismatch (fresh "
              f"{sorted(fresh_scales)} vs baseline {sorted(base_scales)}), "
              "skipping non-regression comparison")
        return 0
    fresh_rows = ph_rows(fresh)
    base_rows = ph_rows(base)
    compared = 0
    for key, base_bpe in sorted(base_rows.items()):
        if key not in fresh_rows:
            continue  # workload changed shape; schema checks still apply
        fresh_bpe = fresh_rows[key]
        compared += 1
        if fresh_bpe > base_bpe * (1.0 + tolerance):
            section, dataset, struct, n = key
            fail(f"space regression: {section} {dataset} {struct} (n={n}) "
                 f"is {fresh_bpe:.3f} B/e in {fresh_path} vs {base_bpe:.3f} "
                 f"B/e in {base_path} "
                 f"(+{(fresh_bpe / base_bpe - 1.0) * 100.0:.1f}%, "
                 f"tolerance {tolerance * 100.0:.0f}%)")
    if compared == 0:
        fail(f"non-regression requested but no comparable PH rows between "
             f"{fresh_path} and {base_path}")
    return compared


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", nargs="?", default="BENCH_space.json")
    parser.add_argument("--baseline", help="committed BENCH_space.json to "
                        "enforce non-regression against")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed fractional B/e increase (default 0.02)")
    args = parser.parse_args()

    sections = load(args.artifact)
    by_dataset = check_schema(args.artifact, sections)

    compared = 0
    if args.baseline:
        base_sections = load(args.baseline)
        check_schema(args.baseline, base_sections)
        compared = check_regression(args.artifact, sections, args.baseline,
                                    base_sections, args.tolerance)

    ph_set = {d: s["PH(set)"] for d, s in by_dataset.items()}
    summary = ", ".join(f"{d} {v:.1f}" for d, v in sorted(ph_set.items()))
    extra = f", {compared} rows compared vs baseline" if compared else ""
    print(f"check_bench_space: OK ({args.artifact}: PH(set) B/e {summary}"
          f"{extra})")


if __name__ == "__main__":
    main()
